#include "core/annual_report.hpp"

#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace tg {
namespace {

class AnnualReportFixture : public ::testing::Test {
 protected:
  static Scenario& scenario() {
    static Scenario* s = [] {
      ScenarioConfig config;
      config.seed = 99;
      config.horizon = 45 * kDay;
      config.registry = ArchetypeRegistry::builtin()
                            .set_count("capacity", 30)
                            .set_count("capability", 4)
                            .set_count("gateway", 20)
                            .set_count("workflow", 8)
                            .set_count("coupled", 2)
                            .set_count("viz", 4)
                            .set_count("data", 6)
                            .set_count("exploratory", 10);
      auto* scenario = new Scenario(std::move(config));
      scenario->run();
      return scenario;
    }();
    return *s;
  }
};

TEST_F(AnnualReportFixture, PerResourceUsageConservesTotals) {
  const Scenario& s = scenario();
  const auto rows = per_resource_usage(s.platform(), s.db(), 0,
                                       s.engine().now() + 1);
  EXPECT_EQ(rows.size(), s.platform().compute().size());
  long jobs = 0;
  double nu = 0.0;
  for (const auto& row : rows) {
    jobs += row.jobs;
    nu += row.nu;
    EXPECT_GE(row.utilization, 0.0);
    EXPECT_LE(row.utilization, 1.0 + 1e-9);
  }
  EXPECT_EQ(jobs, static_cast<long>(s.db().jobs().size()));
  EXPECT_NEAR(nu, s.db().total_nu(), 1e-6 * nu);
}

TEST_F(AnnualReportFixture, UsageByFieldSumsToTotal) {
  const Scenario& s = scenario();
  const auto fields =
      usage_by_field(s.community(), s.db(), 0, s.engine().now() + 1);
  ASSERT_FALSE(fields.empty());
  double total = 0.0;
  for (const auto& [field, nu] : fields) total += nu;
  EXPECT_NEAR(total, s.db().total_nu(), 1e-6 * total);
  // Sorted descending.
  for (std::size_t i = 1; i < fields.size(); ++i) {
    EXPECT_GE(fields[i - 1].second, fields[i].second);
  }
}

TEST_F(AnnualReportFixture, ReportContainsAllSections) {
  const Scenario& s = scenario();
  AnnualReportOptions options;
  options.to = s.engine().now() + 1;
  const std::string report = generate_annual_report(
      s.platform(), s.community(), s.db(), options);
  for (const char* needle :
       {"1. Platform", "2. Headline usage", "3. Usage modalities",
        "4. Resources", "5. Fields of science", "6. WAN data movement",
        "Kraken", "gateway end users"}) {
    EXPECT_NE(report.find(needle), std::string::npos) << needle;
  }
}

TEST_F(AnnualReportFixture, TransfersSectionOptional) {
  const Scenario& s = scenario();
  AnnualReportOptions options;
  options.to = s.engine().now() + 1;
  options.include_transfers = false;
  const std::string report = generate_annual_report(
      s.platform(), s.community(), s.db(), options);
  EXPECT_EQ(report.find("WAN data movement"), std::string::npos);
}

TEST(AnnualReportEmpty, EmptyDatabaseStillRenders) {
  const Platform platform = mini_platform();
  Community community;
  UsageDatabase db;
  const std::string report =
      generate_annual_report(platform, community, db);
  EXPECT_NE(report.find("jobs completed:    0"), std::string::npos);
}

TEST(AnnualReportWindow, WindowRestrictsRecords) {
  const Platform platform = mini_platform();
  Community community;
  const ProjectId p =
      community.add_project("P", FieldOfScience::kPhysics, 1e6);
  (void)p;
  UsageDatabase db;
  JobRecord r;
  r.resource = platform.compute()[0].id;
  r.user = UserId{0};
  r.project = ProjectId{0};
  r.start_time = 0;
  r.end_time = kHour;
  r.nodes = 1;
  r.cores_per_node = 8;
  r.charged_nu = 100.0;
  db.add(r);
  r.end_time = 10 * kDay;
  db.add(r);
  const auto early = per_resource_usage(platform, db, 0, kDay);
  EXPECT_EQ(early[0].jobs, 1);
  const auto all = per_resource_usage(platform, db, 0, 20 * kDay);
  EXPECT_EQ(all[0].jobs, 2);
}

}  // namespace
}  // namespace tg
