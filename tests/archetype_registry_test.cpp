// Unit tests for the composable archetype registry (the redesigned
// population API): add/replace semantics, the builtin legacy order, count
// and rate overrides, scaling, and the data-intensive spec.
#include "workload/archetype_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "infra/platform.hpp"
#include "util/error.hpp"
#include "workload/population.hpp"
#include "workload/scenario.hpp"

namespace tg {
namespace {

TEST(ArchetypeRegistry, BuiltinKeepsLegacyOrderAndCounts) {
  PopulationMix mix;
  const ArchetypeRegistry reg = ArchetypeRegistry::builtin({}, mix);
  ASSERT_EQ(reg.size(), 8u);
  // The builtin order IS the population RNG draw order — appending new
  // specs must never reorder it.
  const char* expected[] = {"capacity", "capability", "workflow", "coupled",
                            "viz",      "data",       "exploratory",
                            "gateway"};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(reg.at(i).name, expected[i]) << i;
  }
  EXPECT_EQ(reg.find("capacity")->count, mix.capacity_users);
  EXPECT_EQ(reg.find("gateway")->count, mix.gateway_end_users);
  EXPECT_TRUE(reg.find("gateway")->is_gateway());
  EXPECT_EQ(reg.account_users(), mix.account_users());
  // No builtin spec carries a data trait: the data grid is opt-in.
  for (const ArchetypeSpec& spec : reg.specs()) {
    EXPECT_FALSE(spec.data.enabled) << spec.name;
  }
}

TEST(ArchetypeRegistry, AddReplacesInPlaceByName) {
  ArchetypeRegistry reg = ArchetypeRegistry::builtin();
  const std::size_t viz_index = reg.index_of("viz");
  ArchetypeSpec replacement = reg.at(viz_index);
  replacement.count = 123;
  reg.add(replacement);
  EXPECT_EQ(reg.size(), 8u);  // replaced, not appended
  EXPECT_EQ(reg.index_of("viz"), viz_index);
  EXPECT_EQ(reg.find("viz")->count, 123);
  // A new name appends after the builtins.
  reg.add(ArchetypeSpec::data_intensive("hep", 10));
  EXPECT_EQ(reg.size(), 9u);
  EXPECT_EQ(reg.index_of("hep"), 8u);
}

TEST(ArchetypeRegistry, SetCountAndRateRequireExistingName) {
  ArchetypeRegistry reg = ArchetypeRegistry::builtin();
  reg.set_count("capacity", 7).set_rate("capacity", 2.5);
  EXPECT_EQ(reg.find("capacity")->count, 7);
  EXPECT_DOUBLE_EQ(reg.find("capacity")->per_week, 2.5);
  EXPECT_THROW(reg.set_count("nope", 1), PreconditionError);
  EXPECT_THROW(reg.set_rate("nope", 1.0), PreconditionError);
}

TEST(ArchetypeRegistry, ScaleMatchesLegacyMixScaling) {
  // with_scale's registry path must round exactly like the legacy mix
  // path (lround, floor 1 for counts that started positive).
  ArchetypeRegistry reg = ArchetypeRegistry::builtin();
  reg.set_count("capability", 1).set_count("viz", 0);
  ArchetypeRegistry scaled = reg;
  scaled.scale(0.4);
  for (const ArchetypeSpec& spec : reg.specs()) {
    const int before = spec.count;
    const int after = scaled.find(spec.name)->count;
    if (before <= 0) {
      EXPECT_EQ(after, before) << spec.name;
    } else {
      EXPECT_EQ(after,
                std::max(1, static_cast<int>(std::lround(before * 0.4))))
          << spec.name;
    }
  }
}

TEST(ArchetypeRegistry, DataIntensiveSpecIsDataCentricWithEnabledTrait) {
  const ArchetypeSpec spec = ArchetypeSpec::data_intensive();
  EXPECT_EQ(spec.truth, Modality::kDataCentric);
  EXPECT_TRUE(spec.data.enabled);
  EXPECT_FALSE(spec.is_gateway());
  EXPECT_GT(spec.count, 0);
}

TEST(ArchetypeRegistry, AppendedSpecJoinsThePopulation) {
  PopulationConfig cfg;
  cfg.registry = ArchetypeRegistry::builtin();
  for (const ArchetypeSpec& spec : cfg.registry.specs()) {
    cfg.registry.set_count(spec.name, 0);
  }
  cfg.registry.set_count("capacity", 5);
  cfg.registry.add(ArchetypeSpec::data_intensive("hep", 12));
  cfg.gateways = 1;
  Rng rng(3);
  const Platform platform = teragrid_2010();
  const Population pop = build_population(platform, cfg, rng);
  ASSERT_EQ(pop.users.size(), 17u);
  std::size_t hep = 0;
  const std::size_t hep_index = pop.registry.index_of("hep");
  for (const SyntheticUser& u : pop.users) {
    if (u.archetype == hep_index) {
      ++hep;
      EXPECT_EQ(pop.truth.of(u.id), Modality::kDataCentric);
    }
  }
  EXPECT_EQ(hep, 12u);
}

}  // namespace
}  // namespace tg
