#include "core/classifier.hpp"

#include <gtest/gtest.h>

#include "core/scoring.hpp"
#include "util/error.hpp"

namespace tg {
namespace {

UserFeatures base_features(int jobs = 10, double nu = 5000.0) {
  UserFeatures f;
  f.user = UserId{1};
  f.jobs = jobs;
  f.total_nu = nu;
  f.max_width_cores = 256;
  f.mean_width_cores = 128;
  f.max_machine_fraction = 0.1;
  f.mean_runtime_s = 4 * 3600;
  return f;
}

TEST(Classifier, NoActivityYieldsEmptySet) {
  const RuleClassifier c;
  const ModalitySet s = c.classify(UserFeatures{});
  EXPECT_TRUE(s.members.none());
}

TEST(Classifier, PlainBatchIsCapacity) {
  const RuleClassifier c;
  const ModalitySet s = c.classify(base_features());
  EXPECT_TRUE(s.has(Modality::kCapacityBatch));
  EXPECT_EQ(s.primary, Modality::kCapacityBatch);
  EXPECT_EQ(s.count(), 1u);
}

TEST(Classifier, GatewayByAttributeFraction) {
  const RuleClassifier c;
  UserFeatures f = base_features();
  f.gateway_fraction = 0.9;
  const ModalitySet s = c.classify(f);
  EXPECT_TRUE(s.has(Modality::kGateway));
  EXPECT_EQ(s.primary, Modality::kGateway);
}

TEST(Classifier, GatewayBelowThresholdIgnored) {
  const RuleClassifier c;
  UserFeatures f = base_features();
  f.gateway_fraction = 0.2;
  EXPECT_FALSE(c.classify(f).has(Modality::kGateway));
}

TEST(Classifier, CapabilityNeedsFractionAndAbsoluteWidth) {
  const RuleClassifier c;
  UserFeatures f = base_features();
  f.max_machine_fraction = 0.8;
  f.max_width_cores = 4096;
  EXPECT_EQ(c.classify(f).primary, Modality::kCapabilityBatch);
  // Half of a tiny machine is not capability.
  f.max_width_cores = 128;
  EXPECT_FALSE(c.classify(f).has(Modality::kCapabilityBatch));
  // A wide job on a huge machine at small fraction is not capability.
  f.max_width_cores = 4096;
  f.max_machine_fraction = 0.2;
  EXPECT_FALSE(c.classify(f).has(Modality::kCapabilityBatch));
}

TEST(Classifier, WorkflowByTagOrBurst) {
  const RuleClassifier c;
  UserFeatures f = base_features();
  f.workflow_fraction = 0.5;
  EXPECT_TRUE(c.classify(f).has(Modality::kWorkflowEnsemble));
  f = base_features();
  f.burst_fraction = 0.5;
  EXPECT_TRUE(c.classify(f).has(Modality::kWorkflowEnsemble));
  f.burst_fraction = 0.1;
  EXPECT_FALSE(c.classify(f).has(Modality::kWorkflowEnsemble));
}

TEST(Classifier, TightlyCoupledByCoallocation) {
  const RuleClassifier c;
  UserFeatures f = base_features();
  f.coalloc_fraction = 0.1;
  const ModalitySet s = c.classify(f);
  EXPECT_TRUE(s.has(Modality::kTightlyCoupled));
  EXPECT_EQ(s.primary, Modality::kTightlyCoupled);
}

TEST(Classifier, InteractiveBySessionsOrVizJobs) {
  const RuleClassifier c;
  UserFeatures f = base_features();
  f.viz_sessions = 1;
  EXPECT_TRUE(c.classify(f).has(Modality::kRemoteInteractive));
  f = base_features();
  f.viz_fraction = 0.5;
  EXPECT_TRUE(c.classify(f).has(Modality::kRemoteInteractive));
}

TEST(Classifier, DataCentricNeedsVolumeAndRatio) {
  const RuleClassifier c;
  UserFeatures f = base_features(5, 100.0);
  f.bytes_transferred = 5e12;
  EXPECT_TRUE(c.classify(f).has(Modality::kDataCentric));
  // Heavy compute users moving data are not data-centric (low bytes/NU).
  f = base_features(100, 1e7);
  f.bytes_transferred = 5e12;
  EXPECT_FALSE(c.classify(f).has(Modality::kDataCentric));
  // Small transfers don't qualify either.
  f = base_features(5, 100.0);
  f.bytes_transferred = 1e9;
  EXPECT_FALSE(c.classify(f).has(Modality::kDataCentric));
}

TEST(Classifier, TransfersOnlyUserIsDataCentric) {
  const RuleClassifier c;
  UserFeatures f;
  f.bytes_transferred = 1e12;
  const ModalitySet s = c.classify(f);
  EXPECT_TRUE(s.has(Modality::kDataCentric));
  EXPECT_EQ(s.primary, Modality::kDataCentric);
}

TEST(Classifier, ExploratoryByTinyTotals) {
  const RuleClassifier c;
  UserFeatures f;
  f.jobs = 5;
  f.total_nu = 50.0;
  f.max_width_cores = 8;
  const ModalitySet s = c.classify(f);
  EXPECT_TRUE(s.has(Modality::kExploratory));
  EXPECT_EQ(s.primary, Modality::kExploratory);
}

TEST(Classifier, ExploratoryByFailureRate) {
  const RuleClassifier c;
  UserFeatures f = base_features(10, 200.0);
  f.max_width_cores = 8;
  f.failed_fraction = 0.6;
  EXPECT_TRUE(c.classify(f).has(Modality::kExploratory));
}

TEST(Classifier, ExploratoryDoesNotOverrideSpecificModalities) {
  const RuleClassifier c;
  UserFeatures f;
  f.jobs = 3;
  f.total_nu = 10.0;
  f.max_width_cores = 2;
  f.gateway_fraction = 1.0;
  const ModalitySet s = c.classify(f);
  EXPECT_TRUE(s.has(Modality::kGateway));
  EXPECT_FALSE(s.has(Modality::kExploratory));
}

TEST(Classifier, MultiModalityUserGetsPrecedencePrimary) {
  const RuleClassifier c;
  UserFeatures f = base_features();
  f.workflow_fraction = 0.5;
  f.max_machine_fraction = 0.9;
  f.max_width_cores = 8192;
  f.viz_fraction = 0.5;
  const ModalitySet s = c.classify(f);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.primary, Modality::kRemoteInteractive);  // precedence order
}

TEST(Classifier, BatchClassifyPreservesOrder) {
  const RuleClassifier c;
  std::vector<UserFeatures> fs;
  UserFeatures a = base_features();
  a.gateway_fraction = 1.0;
  fs.push_back(a);
  fs.push_back(base_features());
  const auto sets = c.classify(fs);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].primary, Modality::kGateway);
  EXPECT_EQ(sets[1].primary, Modality::kCapacityBatch);
}

TEST(Classifier, ThresholdValidation) {
  ClassifierThresholds t;
  t.gateway_fraction = 0.0;
  EXPECT_THROW(RuleClassifier{t}, PreconditionError);
  t = ClassifierThresholds{};
  t.capability_machine_fraction = 1.5;
  EXPECT_THROW(RuleClassifier{t}, PreconditionError);
}

TEST(Modality, NamesComplete) {
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    EXPECT_STRNE(to_string(static_cast<Modality>(m)), "Unknown");
    EXPECT_STRNE(short_name(static_cast<Modality>(m)), "unknown");
  }
  EXPECT_EQ(taxonomy().size(), kModalityCount);
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    EXPECT_EQ(static_cast<std::size_t>(taxonomy()[m].modality), m);
    EXPECT_NE(taxonomy()[m].mechanism, nullptr);
  }
}

TEST(Scoring, ConfusionMatrixBasics) {
  ConfusionMatrix cm;
  cm.add(Modality::kGateway, Modality::kGateway);
  cm.add(Modality::kGateway, Modality::kCapacityBatch);
  cm.add(Modality::kCapacityBatch, Modality::kCapacityBatch);
  EXPECT_EQ(cm.total(), 3);
  EXPECT_NEAR(cm.accuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cm.recall(Modality::kGateway), 0.5);
  EXPECT_DOUBLE_EQ(cm.precision(Modality::kGateway), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(Modality::kCapacityBatch), 0.5);
  EXPECT_NEAR(cm.f1(Modality::kGateway), 2 * 0.5 / 1.5, 1e-12);
}

TEST(Scoring, MacroF1SkipsAbsentClasses) {
  ConfusionMatrix cm;
  cm.add(Modality::kGateway, Modality::kGateway);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
  EXPECT_DOUBLE_EQ(cm.precision(Modality::kDataCentric), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(Modality::kDataCentric), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(Modality::kDataCentric), 0.0);
}

TEST(Scoring, ScorePrimaryAlignment) {
  const auto cm = score_primary({Modality::kGateway, Modality::kExploratory},
                                {Modality::kGateway, Modality::kGateway});
  EXPECT_EQ(cm.total(), 2);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.5);
  EXPECT_THROW((void)score_primary({Modality::kGateway}, {}), PreconditionError);
}

TEST(Scoring, EmptyMatrix) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 0.0);
  EXPECT_FALSE(cm.to_table().to_string().empty());
  EXPECT_FALSE(cm.per_class_table().to_string().empty());
}

}  // namespace
}  // namespace tg
