#include "workflow/dag.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tg {
namespace {

DagTask task(int nodes = 1) {
  DagTask t;
  t.nodes = nodes;
  return t;
}

TEST(Dag, AddTaskAndEdges) {
  Dag d;
  const int a = d.add_task(task());
  const int b = d.add_task(task());
  const int c = d.add_task(task());
  d.add_edge(a, b);
  d.add_edge(a, c);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.children(a), (std::vector<int>{b, c}));
  EXPECT_EQ(d.parents(c), (std::vector<int>{a}));
  EXPECT_EQ(d.roots(), (std::vector<int>{a}));
  d.validate();
}

TEST(Dag, EdgeValidation) {
  Dag d;
  const int a = d.add_task(task());
  EXPECT_THROW(d.add_edge(a, a), PreconditionError);
  EXPECT_THROW(d.add_edge(a, 5), PreconditionError);
  EXPECT_THROW(d.add_edge(-1, a), PreconditionError);
  EXPECT_THROW(d.add_task(task(0)), PreconditionError);
}

TEST(Dag, CycleDetected) {
  Dag d;
  const int a = d.add_task(task());
  const int b = d.add_task(task());
  const int c = d.add_task(task());
  d.add_edge(a, b);
  d.add_edge(b, c);
  d.add_edge(c, a);
  EXPECT_THROW(d.validate(), PreconditionError);
}

TEST(Dag, SelfContainedDiamondValidates) {
  Dag d;
  const int a = d.add_task(task());
  const int b = d.add_task(task());
  const int c = d.add_task(task());
  const int e = d.add_task(task());
  d.add_edge(a, b);
  d.add_edge(a, c);
  d.add_edge(b, e);
  d.add_edge(c, e);
  d.validate();
  EXPECT_EQ(d.parents(e).size(), 2u);
}

TEST(DagTemplates, Chain) {
  const Dag d = make_chain(5, task());
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.edges().size(), 4u);
  EXPECT_EQ(d.roots().size(), 1u);
  d.validate();
  EXPECT_THROW(make_chain(0, task()), PreconditionError);
}

TEST(DagTemplates, ChainOfOne) {
  const Dag d = make_chain(1, task());
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.edges().empty());
}

TEST(DagTemplates, Ensemble) {
  const Dag d = make_ensemble(10, task(2));
  EXPECT_EQ(d.size(), 10u);
  EXPECT_TRUE(d.edges().empty());
  EXPECT_EQ(d.roots().size(), 10u);
  for (const auto& t : d.tasks()) EXPECT_EQ(t.nodes, 2);
}

TEST(DagTemplates, FanOutFanIn) {
  const Dag d = make_fan_out_fan_in(4, task(1), task(2), task(3));
  EXPECT_EQ(d.size(), 6u);  // setup + 4 + merge
  EXPECT_EQ(d.roots(), (std::vector<int>{0}));
  EXPECT_EQ(d.children(0).size(), 4u);
  EXPECT_EQ(d.parents(5).size(), 4u);
  EXPECT_EQ(d.tasks()[5].nodes, 3);
  d.validate();
}

TEST(DagTemplates, Layered) {
  const Dag d = make_layered(3, 2, task());
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(d.edges().size(), 2u * 2u * 2u);  // all-to-all between layers
  EXPECT_EQ(d.roots().size(), 2u);
  d.validate();
}

class EnsembleWidths : public ::testing::TestWithParam<int> {};

TEST_P(EnsembleWidths, SizeMatchesWidth) {
  const Dag d = make_ensemble(GetParam(), task());
  EXPECT_EQ(d.size(), static_cast<std::size_t>(GetParam()));
  EXPECT_EQ(d.roots().size(), static_cast<std::size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Widths, EnsembleWidths,
                         ::testing::Values(1, 2, 16, 100));

}  // namespace
}  // namespace tg
