// Data-grid subsystem tests: replica catalog, brute-force cache parity
// against a naive reference model, stage-in determinism across execution
// modes, the zero-rate discipline, and the data-centric classification
// loop closing against ground truth.
#include "data/data_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <list>
#include <utility>
#include <vector>

#include "core/classifier.hpp"
#include "core/features.hpp"
#include "data/replica_catalog.hpp"
#include "data/storage_cache.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace tg {
namespace {

TEST(ReplicaCatalog, RegistersAndResolves) {
  ReplicaCatalog catalog;
  const DatasetId a = catalog.add("pool0/ds0", 5e9);
  const DatasetId b = catalog.add("pool0/ds1", 2e10);
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(b.value(), 1);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_DOUBLE_EQ(catalog.bytes(a), 5e9);
  EXPECT_EQ(catalog.name(b), "pool0/ds1");
  catalog.add_replica(a, SiteId{2});
  catalog.add_replica(a, SiteId{5});
  catalog.add_replica(a, SiteId{2});  // duplicate ignored
  ASSERT_EQ(catalog.replicas(a).size(), 2u);
  EXPECT_DOUBLE_EQ(catalog.replicated_bytes(), 2 * 5e9 + 0 * 2e10);
  EXPECT_THROW(catalog.add("pool0/ds0", 1.0), PreconditionError);
}

// A deliberately naive reference cache: an MRU-front list searched
// linearly, mirroring the documented semantics of StorageCache (LRU
// eviction; the size-aware variant evicts the largest dataset within the
// 8-deep LRU tail window, ties to the least recently used).
class NaiveCache {
 public:
  NaiveCache(double capacity, CachePolicy policy)
      : capacity_(capacity), policy_(policy) {}

  bool lookup(int id) {
    auto it = std::find_if(mru_.begin(), mru_.end(),
                           [id](const auto& e) { return e.first == id; });
    if (it == mru_.end()) return false;
    mru_.splice(mru_.begin(), mru_, it);
    return true;
  }

  void admit(int id, double bytes) {
    if (lookup(id)) return;
    if (bytes > capacity_) {
      ++rejected;
      return;
    }
    while (used_ + bytes > capacity_) evict_one();
    mru_.emplace_front(id, bytes);
    used_ += bytes;
  }

  void evict_one() {
    auto victim = std::prev(mru_.end());
    if (policy_ == CachePolicy::kSizeAwareLru) {
      auto cursor = mru_.rbegin();
      for (int i = 0; i < 8 && cursor != mru_.rend(); ++i, ++cursor) {
        if (cursor->second > victim->second) victim = std::prev(cursor.base());
      }
    }
    used_ -= victim->second;
    ++evictions;
    mru_.erase(victim);
  }

  [[nodiscard]] bool contains(int id) const {
    return std::any_of(mru_.begin(), mru_.end(),
                       [id](const auto& e) { return e.first == id; });
  }
  [[nodiscard]] double used() const { return used_; }
  [[nodiscard]] std::size_t resident() const { return mru_.size(); }

  std::uint64_t evictions = 0;
  std::uint64_t rejected = 0;

 private:
  double capacity_;
  CachePolicy policy_;
  double used_ = 0.0;
  std::list<std::pair<int, double>> mru_;  ///< front = most recently used
};

void parity_run(CachePolicy policy, std::uint64_t seed) {
  constexpr int kDatasets = 48;
  constexpr int kOps = 4000;
  const double capacity = 100.0;
  Rng rng(seed);
  // Sizes in [1, 30]: several datasets thrash, a few never fit patterns.
  std::vector<double> bytes(kDatasets);
  for (double& b : bytes) b = 1.0 + std::floor(rng.uniform() * 30.0);

  StorageCache cache(capacity, policy);
  NaiveCache model(capacity, policy);
  std::uint64_t hits = 0, misses = 0;
  for (int op = 0; op < kOps; ++op) {
    const int id = static_cast<int>(rng.uniform() * kDatasets);
    const bool model_hit = model.lookup(id);
    const bool cache_hit = cache.lookup(DatasetId{id}, bytes[id]);
    ASSERT_EQ(cache_hit, model_hit) << "op " << op << " dataset " << id;
    (cache_hit ? hits : misses)++;
    if (!cache_hit) {
      model.admit(id, bytes[id]);
      cache.admit(DatasetId{id}, bytes[id]);
    }
    ASSERT_DOUBLE_EQ(cache.used_bytes(), model.used()) << "op " << op;
    ASSERT_EQ(cache.resident(), model.resident()) << "op " << op;
  }
  // Full residency parity at the end, plus every counter.
  for (int id = 0; id < kDatasets; ++id) {
    EXPECT_EQ(cache.contains(DatasetId{id}), model.contains(id)) << id;
  }
  EXPECT_EQ(cache.stats().hits, hits);
  EXPECT_EQ(cache.stats().misses, misses);
  EXPECT_EQ(cache.stats().evictions, model.evictions);
  EXPECT_EQ(cache.stats().rejected, model.rejected);
  EXPECT_GT(cache.stats().evictions, 0u);  // the workload must thrash
}

TEST(StorageCache, BruteForceParityLru) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    parity_run(CachePolicy::kLru, seed);
  }
}

TEST(StorageCache, BruteForceParitySizeAware) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    parity_run(CachePolicy::kSizeAwareLru, seed);
  }
}

TEST(StorageCache, RejectsDatasetLargerThanCapacity) {
  StorageCache cache(10.0, CachePolicy::kLru);
  cache.admit(DatasetId{0}, 11.0);
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_FALSE(cache.contains(DatasetId{0}));
  EXPECT_DOUBLE_EQ(cache.used_bytes(), 0.0);
}

TEST(StorageCache, SizeAwareEvictsLargeTailEntryFirst) {
  StorageCache cache(100.0, CachePolicy::kSizeAwareLru);
  cache.admit(DatasetId{0}, 60.0);
  cache.admit(DatasetId{1}, 30.0);
  // 0 is in the 8-deep tail window and larger than the LRU victim: the
  // size-aware policy drops it, keeping the smaller (older than 1? no —
  // larger) dataset out and both small ones in.
  cache.admit(DatasetId{2}, 20.0);
  EXPECT_FALSE(cache.contains(DatasetId{0}));
  EXPECT_TRUE(cache.contains(DatasetId{1}));
  EXPECT_TRUE(cache.contains(DatasetId{2}));
}

ScenarioConfig data_config(int shards, bool plan_cache = true) {
  return ScenarioConfig::defaults()
      .with_seed(99)
      .with_horizon(45 * kDay)
      .with_scale(0.5)
      .with_plan_cache(plan_cache)
      .with_shards(shards)
      .with_archetype(ArchetypeSpec::data_intensive("dataintensive", 24))
      .with_data_grid(DataGridConfig::enabled_defaults().with_cache_bytes(
          10e12));
}

/// The full per-job data story, byte-comparable across runs.
struct DataTrace {
  std::vector<double> bytes_read;
  std::vector<double> bytes_from_cache;
  std::vector<Duration> stage_in;
  std::vector<SimTime> end_times;
};

DataTrace run_trace(const ScenarioConfig& config) {
  Scenario s{ScenarioConfig(config)};
  s.run();
  DataTrace t;
  for (const JobRecord& r : s.db().jobs()) {
    t.bytes_read.push_back(r.bytes_read);
    t.bytes_from_cache.push_back(r.bytes_from_cache);
    t.stage_in.push_back(r.stage_in);
    t.end_times.push_back(r.end_time);
  }
  return t;
}

TEST(DataGrid, StageInDeterministicAcrossExecutionModes) {
  // The merged loop is the oracle; inline windows, pooled windows and the
  // exact-replan reference planner must reproduce every job's data fields
  // and completion time exactly.
  const DataTrace oracle = run_trace(data_config(0));
  EXPECT_EQ(oracle.bytes_read, run_trace(data_config(1)).bytes_read);
  const DataTrace pooled = run_trace(data_config(4));
  EXPECT_EQ(oracle.bytes_read, pooled.bytes_read);
  EXPECT_EQ(oracle.bytes_from_cache, pooled.bytes_from_cache);
  EXPECT_EQ(oracle.stage_in, pooled.stage_in);
  EXPECT_EQ(oracle.end_times, pooled.end_times);
  const DataTrace replan = run_trace(data_config(0, /*plan_cache=*/false));
  EXPECT_EQ(oracle.stage_in, replan.stage_in);
  EXPECT_EQ(oracle.end_times, replan.end_times);
}

TEST(DataGrid, StageInFeedsJobDataFields) {
  Scenario s(data_config(0));
  s.run();
  ASSERT_NE(s.data_grid(), nullptr);
  const DataGrid::Stats& stats = s.data_grid()->stats();
  EXPECT_GT(stats.stage_ins, 0u);
  EXPECT_GT(stats.bytes_read, 0.0);
  std::size_t with_data = 0, with_stage_in = 0;
  for (const JobRecord& r : s.db().jobs()) {
    if (r.bytes_read > 0.0) ++with_data;
    if (r.stage_in > 0) {
      ++with_stage_in;
      EXPECT_GT(r.bytes_read, 0.0);
    }
    EXPECT_LE(r.bytes_from_cache, r.bytes_read);
  }
  EXPECT_GT(with_data, 0u);
  EXPECT_GT(with_stage_in, 0u);
  // Cache counters moved too: the quarter's reuse hits the site caches.
  EXPECT_GT(s.data_grid()->total_cache_stats().hits, 0u);
}

TEST(DataGrid, ZeroRateDisciplineWhenUnconfigured) {
  Scenario s(ScenarioConfig::defaults().with_seed(99).with_horizon(30 * kDay)
                 .with_scale(0.5));
  s.run();
  EXPECT_EQ(s.data_grid(), nullptr);
  for (const JobRecord& r : s.db().jobs()) {
    EXPECT_DOUBLE_EQ(r.bytes_read, 0.0);
    EXPECT_DOUBLE_EQ(r.bytes_from_cache, 0.0);
    EXPECT_EQ(r.stage_in, 0);
  }
}

TEST(DataGrid, DataCentricUsersRecoveredFromRecords) {
  // A full quarter so per-user staged volume clears the classifier's
  // bytes-read gates. Recall is measured over the staged archetype: the
  // builtin "data" archetype has no data trait (bytes_read == 0) and is
  // recovered by the older bytes-transferred rule, not the one under test.
  Scenario s(data_config(0).with_horizon(kQuarter));
  s.run();
  const FeatureExtractor extractor(s.platform(), s.config().features);
  const auto features = extractor.extract(s.db(), 0, s.engine().now() + 1);
  const RuleClassifier classifier;
  const auto sets = classifier.classify(features);
  std::vector<bool> flagged_of(
      static_cast<std::size_t>(s.db().user_id_limit()), false);
  std::size_t false_flags = 0;
  for (std::size_t i = 0; i < features.size(); ++i) {
    const bool truth =
        s.truth().of(features[i].user) == Modality::kDataCentric;
    const bool hit = sets[i].has(Modality::kDataCentric);
    if (hit) {
      flagged_of[static_cast<std::size_t>(features[i].user.value())] = true;
      if (!truth) ++false_flags;
    }
  }
  const std::size_t staged_index =
      s.population().registry.index_of("dataintensive");
  std::size_t staged = 0, staged_hit = 0;
  for (const SyntheticUser& u : s.population().users) {
    if (u.archetype != staged_index) continue;
    ++staged;
    const auto v = static_cast<std::size_t>(u.id.value());
    if (v < flagged_of.size() && flagged_of[v]) ++staged_hit;
  }
  ASSERT_GT(staged, 0u);
  // The acceptance bar: >= 90% of the staged data-intensive users are
  // recovered from the accounting stream alone, with few false positives.
  EXPECT_GE(static_cast<double>(staged_hit) / static_cast<double>(staged),
            0.9)
      << staged_hit << "/" << staged;
  EXPECT_LE(false_flags, staged / 5);
}

}  // namespace
}  // namespace tg
