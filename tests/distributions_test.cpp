#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace tg {
namespace {

constexpr int kSamples = 200000;

template <class Dist>
RunningStats sample_stats(const Dist& dist, std::uint64_t seed,
                          int n = kSamples) {
  Rng rng(seed);
  RunningStats s;
  for (int i = 0; i < n; ++i) s.add(dist.sample(rng));
  return s;
}

TEST(Exponential, MeanMatchesRate) {
  const Exponential dist(0.5);
  const auto s = sample_stats(dist, 1);
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(Exponential, AllPositive) {
  const Exponential dist(3.0);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(dist.sample(rng), 0.0);
}

TEST(Exponential, RejectsNonPositiveRate) {
  EXPECT_THROW(Exponential(0.0), PreconditionError);
  EXPECT_THROW(Exponential(-1.0), PreconditionError);
}

TEST(LogNormal, FromMeanCvRecoversMean) {
  const LogNormal dist = LogNormal::from_mean_cv(10.0, 0.5);
  const auto s = sample_stats(dist, 3);
  EXPECT_NEAR(s.mean(), 10.0, 0.2);
}

TEST(LogNormal, FromMeanCvRecoversCv) {
  const LogNormal dist = LogNormal::from_mean_cv(10.0, 1.5);
  const auto s = sample_stats(dist, 4);
  EXPECT_NEAR(s.stddev() / s.mean(), 1.5, 0.1);
}

TEST(LogNormal, AnalyticMeanMatches) {
  const LogNormal dist = LogNormal::from_mean_cv(7.0, 0.9);
  EXPECT_NEAR(dist.mean(), 7.0, 1e-9);
}

TEST(LogNormal, ZeroSigmaIsConstant) {
  const LogNormal dist(std::log(5.0), 0.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(dist.sample(rng), 5.0, 1e-9);
  }
}

TEST(Weibull, ShapeOneIsExponential) {
  // Weibull(k=1, lambda) == Exponential(1/lambda).
  const Weibull dist(1.0, 4.0);
  const auto s = sample_stats(dist, 6);
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(Weibull, RejectsBadParams) {
  EXPECT_THROW(Weibull(0.0, 1.0), PreconditionError);
  EXPECT_THROW(Weibull(1.0, -2.0), PreconditionError);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  const BoundedPareto dist(1.2, 10.0, 1000.0);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, 10.0);
    ASSERT_LE(x, 1000.0);
  }
}

TEST(BoundedPareto, HeavyTailSkewsLow) {
  const BoundedPareto dist(1.5, 1.0, 1e6);
  Rng rng(8);
  int below_ten = 0;
  for (int i = 0; i < 10000; ++i) {
    if (dist.sample(rng) < 10.0) ++below_ten;
  }
  // P(X < 10) for alpha=1.5 bounded Pareto ~ 1 - 10^-1.5 ~ 0.968.
  EXPECT_GT(below_ten, 9000);
}

TEST(BoundedPareto, RejectsBadBounds) {
  EXPECT_THROW(BoundedPareto(1.0, 5.0, 5.0), PreconditionError);
  EXPECT_THROW(BoundedPareto(1.0, 0.0, 5.0), PreconditionError);
  EXPECT_THROW(BoundedPareto(-1.0, 1.0, 5.0), PreconditionError);
}

TEST(Zipf, RankOneMostPopular) {
  const Zipf dist(10, 1.0);
  Rng rng(9);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::size_t r = dist.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 10u);
    ++counts[r];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
  EXPECT_GT(counts[5], counts[10]);
}

TEST(Zipf, SingleOutcome) {
  const Zipf dist(1, 2.0);
  Rng rng(10);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), 1u);
}

TEST(Discrete, RespectsWeights) {
  const Discrete dist({1.0, 3.0, 0.0, 6.0});
  Rng rng(11);
  std::vector<int> counts(4, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[dist.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(kN), 0.6, 0.01);
}

TEST(Discrete, ProbabilityAccessor) {
  const Discrete dist({2.0, 2.0, 4.0});
  EXPECT_NEAR(dist.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(dist.probability(1), 0.25, 1e-12);
  EXPECT_NEAR(dist.probability(2), 0.50, 1e-12);
  EXPECT_THROW((void)dist.probability(3), PreconditionError);
}

TEST(Discrete, RejectsDegenerateWeights) {
  EXPECT_THROW(Discrete({}), PreconditionError);
  EXPECT_THROW(Discrete({0.0, 0.0}), PreconditionError);
  EXPECT_THROW(Discrete({1.0, -1.0}), PreconditionError);
}

TEST(LogUniformInt, WithinBounds) {
  const LogUniformInt dist(8, 512);
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    const auto v = dist.sample(rng);
    ASSERT_GE(v, 8);
    ASSERT_LE(v, 512);
  }
}

TEST(LogUniformInt, LogSpaceRoughlyUniform) {
  // Median of log-uniform [8, 512] should be near geometric mean (64).
  const LogUniformInt dist(8, 512);
  Rng rng(13);
  std::vector<double> vals;
  for (int i = 0; i < 20000; ++i) {
    vals.push_back(static_cast<double>(dist.sample(rng)));
  }
  EXPECT_NEAR(percentile(vals, 0.5), 64.0, 8.0);
}

TEST(SnapToPowerOfTwo, AlwaysWhenP1) {
  Rng rng(14);
  for (std::int64_t w : {3LL, 5LL, 9LL, 100LL, 1000LL}) {
    const auto v = snap_to_power_of_two(w, 1.0, rng);
    EXPECT_EQ(v & (v - 1), 0) << v;
    EXPECT_GE(v, w);
  }
}

TEST(SnapToPowerOfTwo, NeverWhenP0) {
  Rng rng(15);
  for (std::int64_t w : {3LL, 5LL, 9LL}) {
    EXPECT_EQ(snap_to_power_of_two(w, 0.0, rng), w);
  }
}

TEST(SnapToPowerOfTwo, PowerStaysPut) {
  Rng rng(16);
  EXPECT_EQ(snap_to_power_of_two(64, 1.0, rng), 64);
}

TEST(StandardNormal, MeanZeroVarianceOne) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < kSamples; ++i) s.add(sample_standard_normal(rng));
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.variance(), 1.0, 0.02);
}

// Property sweep: every distribution stays deterministic under seed reuse.
class DistDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistDeterminism, SameSeedSameStream) {
  const LogNormal d = LogNormal::from_mean_cv(4.0, 1.0);
  Rng a(GetParam());
  Rng b(GetParam());
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(d.sample(a), d.sample(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistDeterminism,
                         ::testing::Values(1ULL, 99ULL, 31337ULL));

}  // namespace
}  // namespace tg
