#include "des/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, FifoAmongTies) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, PriorityBreaksTies) {
  Engine e;
  std::vector<std::string> order;
  e.schedule_at(5, [&] { order.push_back("submission"); },
                EventPriority::kSubmission);
  e.schedule_at(5, [&] { order.push_back("completion"); },
                EventPriority::kCompletion);
  e.run();
  EXPECT_EQ(order, (std::vector<std::string>{"completion", "submission"}));
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  SimTime seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_in(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.schedule_at(100, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(50, [] {}), PreconditionError);
  EXPECT_THROW(e.schedule_in(-1, [] {}), PreconditionError);
}

TEST(Engine, RejectsNullCallback) {
  Engine e;
  EXPECT_THROW(e.schedule_at(1, nullptr), PreconditionError);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceFails) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
  EXPECT_FALSE(e.cancel(kInvalidEvent));
  EXPECT_FALSE(e.cancel(999999));
}

TEST(Engine, CancelAfterFireFails) {
  Engine e;
  const EventId id = e.schedule_at(10, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<SimTime> fired;
  e.schedule_at(10, [&] { fired.push_back(10); });
  e.schedule_at(20, [&] { fired.push_back(20); });
  e.schedule_at(30, [&] { fired.push_back(30); });
  const std::size_t n = e.run_until(20);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(e.now(), 20);  // clock advances to the boundary
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  e.run();
  EXPECT_EQ(fired.back(), 30);
}

TEST(Engine, RunUntilAdvancesClockWithNoEvents) {
  Engine e;
  e.run_until(500);
  EXPECT_EQ(e.now(), 500);
  EXPECT_THROW(e.run_until(400), PreconditionError);
}

TEST(Engine, EventsScheduledDuringRunAreProcessed) {
  Engine e;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 10) e.schedule_in(5, step);
  };
  e.schedule_at(0, step);
  e.run();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(e.now(), 45);
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(i, [&] {
      if (++count == 3) e.stop();
    });
  }
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.pending(), 7u);
  e.run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(Engine, PendingExcludesCancelled) {
  Engine e;
  const EventId a = e.schedule_at(10, [] {});
  e.schedule_at(20, [] {});
  EXPECT_EQ(e.pending(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, ProcessedCounter) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 5u);
}

TEST(Engine, RunUntilSkipsCancelledHead) {
  Engine e;
  bool fired = false;
  const EventId a = e.schedule_at(5, [&] { fired = true; });
  e.schedule_at(50, [] {});
  e.cancel(a);
  e.run_until(10);
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.now(), 10);
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, CancelFromWithinCallback) {
  Engine e;
  bool victim_fired = false;
  EventId victim = kInvalidEvent;
  victim = e.schedule_at(20, [&] { victim_fired = true; });
  e.schedule_at(10, [&] { EXPECT_TRUE(e.cancel(victim)); });
  e.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, CancelOwnIdFromWithinCallbackFails) {
  // By the time a callback runs, its event has fired; the handle is stale.
  Engine e;
  EventId self = kInvalidEvent;
  bool cancelled = true;
  self = e.schedule_at(10, [&] { cancelled = e.cancel(self); });
  e.run();
  EXPECT_FALSE(cancelled);
}

TEST(Engine, StaleHandleAfterSlotReuseFails) {
  // Firing recycles the slab slot; a later event may land in the same slot
  // but gets a new generation, so the old handle must not cancel it.
  Engine e;
  const EventId first = e.schedule_at(10, [] {});
  e.run();
  bool second_fired = false;
  const EventId second = e.schedule_at(20, [&] { second_fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(e.cancel(first));  // stale: must not tombstone `second`
  e.run();
  EXPECT_TRUE(second_fired);
}

TEST(Engine, RunUntilTombstoneHeavyHeap) {
  Engine e;
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(e.schedule_at(i, [&] { ++fired; }));
  }
  // Cancel everything except every 100th event: 99% tombstones.
  for (int i = 0; i < 1000; ++i) {
    if (i % 100 != 0) e.cancel(ids[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(e.pending(), 10u);
  EXPECT_EQ(e.run_until(499), 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(e.now(), 499);
  EXPECT_EQ(e.pending(), 5u);
  e.run();
  EXPECT_EQ(fired, 10);
  EXPECT_GE(e.stats().tombstones, 990u);
}

TEST(Engine, StatsCounters) {
  Engine e;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(e.schedule_at(i, [] {}));
  for (int i = 0; i < 4; ++i) e.cancel(ids[static_cast<std::size_t>(i)]);
  e.run();
  const Engine::Stats& s = e.stats();
  EXPECT_EQ(s.scheduled, 10u);
  EXPECT_EQ(s.cancelled, 4u);
  EXPECT_EQ(s.fired, 6u);
  EXPECT_EQ(s.tombstones, 4u);
  EXPECT_EQ(s.heap_high_water, 10u);
  EXPECT_DOUBLE_EQ(s.tombstone_ratio(), 0.4);
}

TEST(Engine, CallbackCapturesAreDestroyedOnCancel) {
  // cancel() must release the captures immediately, not at pop time.
  Engine e;
  auto token = std::make_shared<int>(7);
  const EventId id = e.schedule_at(10, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  e.cancel(id);
  EXPECT_EQ(token.use_count(), 1);
  e.run();
}

TEST(EventCallback, InlineVsHeapStorage) {
  struct Small {
    std::uint64_t a[4];
    void operator()() const {}
  };
  struct Big {
    std::uint64_t a[16];
    void operator()() const {}
  };
  static_assert(EventCallback::fits_inline<Small>());
  static_assert(!EventCallback::fits_inline<Big>());

  // Both storage classes must invoke and move correctly.
  int hits = 0;
  std::uint64_t big_sum = 0;
  Big big{};
  big.a[15] = 41;
  EventCallback small_cb = [&hits] { ++hits; };
  EventCallback big_cb = [&big_sum, big] { big_sum = big.a[15] + 1; };
  EventCallback moved_small = std::move(small_cb);
  EventCallback moved_big = std::move(big_cb);
  EXPECT_FALSE(static_cast<bool>(small_cb));
  EXPECT_FALSE(static_cast<bool>(big_cb));
  moved_small();
  moved_big();
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(big_sum, 42u);
}

// Golden determinism trace. The hash below was captured by running this
// exact workload on the pre-rewrite engine (std::function heap +
// unordered_set lazy cancellation, PR 1 seed): the slab/tombstone engine
// must order every event identically. Do not update the constant without
// understanding which trace reordering changed it.
TEST(Engine, GoldenTraceMatchesSeedEngine) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };

  Engine e;
  Rng rng(12345);
  std::vector<EventId> ids;
  int fired = 0;
  // Phase 1: scrambled bulk schedule with mixed priorities, cancel a third,
  // run to mid-horizon.
  for (int i = 0; i < 2000; ++i) {
    const SimTime t = rng.uniform_int(0, 10000);
    const int tag = i;
    ids.push_back(e.schedule_at(
        t,
        [&, tag] {
          mix(static_cast<std::uint64_t>(e.now()));
          mix(static_cast<std::uint64_t>(tag));
          ++fired;
        },
        static_cast<EventPriority>(static_cast<int>(rng.uniform_int(0, 3)) *
                                   10)));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) e.cancel(ids[i]);
  e.run_until(5000);
  mix(static_cast<std::uint64_t>(e.now()));
  // Phase 2: self-rescheduling chains interleaved with the leftovers.
  std::function<void()> chain = [&] {
    mix(static_cast<std::uint64_t>(e.now()));
    ++fired;
    if (fired < 4000) e.schedule_in(rng.uniform_int(1, 7), chain);
  };
  e.schedule_in(1, chain);
  e.run();
  mix(static_cast<std::uint64_t>(e.now()));

  EXPECT_EQ(fired, 4000);
  EXPECT_EQ(e.now(), 15761);
  EXPECT_EQ(h, 5553760236236857368ull);
}

TEST(TimeFormat, Renders) {
  EXPECT_EQ(format_duration(0), "00:00:00");
  EXPECT_EQ(format_duration(kHour + 2 * kMinute + 3 * kSecond), "01:02:03");
  EXPECT_EQ(format_duration(2 * kDay + kHour), "2d 01:00:00");
  EXPECT_EQ(format_duration(-kMinute), "-00:01:00");
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1500);
  EXPECT_DOUBLE_EQ(to_seconds(2500), 2.5);
  EXPECT_DOUBLE_EQ(to_hours(kDay), 24.0);
  EXPECT_DOUBLE_EQ(to_days(kWeek), 7.0);
}

// Property sweep: interleaved schedule/cancel patterns keep ordering.
class EngineChurn : public ::testing::TestWithParam<int> {};

TEST_P(EngineChurn, MonotoneFiringTimes) {
  Engine e;
  std::vector<SimTime> fired;
  const int n = GetParam();
  std::vector<EventId> ids;
  for (int i = 0; i < n; ++i) {
    const SimTime t = (i * 7919) % 1000;  // scrambled times
    ids.push_back(e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); }));
  }
  for (int i = 0; i < n; i += 3) e.cancel(ids[static_cast<std::size_t>(i)]);
  e.run();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.size(), static_cast<std::size_t>(n - (n + 2) / 3));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EngineChurn, ::testing::Values(10, 100, 1000));

}  // namespace
}  // namespace tg
