#include <gtest/gtest.h>

#include "sched/scheduler.hpp"
#include "util/error.hpp"

namespace tg {
namespace {

ComputeResource machine(int nodes = 16) {
  ComputeResource r;
  r.id = ResourceId{0};
  r.site = SiteId{0};
  r.name = "fs";
  r.nodes = nodes;
  r.cores_per_node = 8;
  r.max_walltime = 48 * kHour;
  return r;
}

JobRequest job_of(UserId user, int nodes, Duration runtime) {
  JobRequest req;
  req.user = user;
  req.project = ProjectId{0};
  req.nodes = nodes;
  req.actual_runtime = runtime;
  req.requested_walltime = runtime;
  return req;
}

SchedulerConfig fair_cfg() {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kFcfs;
  cfg.fair_share = true;
  cfg.fair_share_half_life = 7 * kDay;
  return cfg;
}

TEST(FairShare, UsageAccumulatesAndDecays) {
  Engine engine;
  ResourceScheduler sched(engine, machine(), fair_cfg());
  sched.submit(job_of(UserId{1}, 8, 2 * kHour));
  engine.run();
  // 8 nodes x 8 cores x 7200 s.
  const double expected = 8 * 8 * 7200.0;
  EXPECT_NEAR(sched.fair_share_usage(UserId{1}, 2 * kHour), expected, 1e-6);
  // One half-life later it has halved.
  EXPECT_NEAR(sched.fair_share_usage(UserId{1}, 2 * kHour + 7 * kDay),
              expected / 2, 1e-6);
  // Unknown users have zero usage.
  EXPECT_EQ(sched.fair_share_usage(UserId{99}, kDay), 0.0);
}

TEST(FairShare, LightUserJumpsQueue) {
  Engine engine;
  ResourceScheduler sched(engine, machine(), fair_cfg());
  std::vector<UserId> start_order;
  sched.add_on_start([&](const Job& j) { start_order.push_back(j.req.user); });

  // Heavy user builds up usage.
  sched.submit(job_of(UserId{1}, 16, 4 * kHour));
  engine.run();
  ASSERT_EQ(start_order.size(), 1u);

  // Machine gets blocked, then heavy submits before light: light first.
  sched.submit(job_of(UserId{3}, 16, kHour));  // blocker (new user)
  sched.submit(job_of(UserId{1}, 8, kHour));   // heavy, earlier submission
  sched.submit(job_of(UserId{2}, 8, kHour));   // light, later submission
  engine.run();
  ASSERT_EQ(start_order.size(), 4u);
  EXPECT_EQ(start_order[2], UserId{2}) << "light user should start first";
  EXPECT_EQ(start_order[3], UserId{1});
}

TEST(FairShare, FifoWithoutFairShare) {
  Engine engine;
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kFcfs;
  ResourceScheduler sched(engine, machine(), cfg);
  std::vector<UserId> start_order;
  sched.add_on_start([&](const Job& j) { start_order.push_back(j.req.user); });
  sched.submit(job_of(UserId{1}, 16, 4 * kHour));
  engine.run();
  sched.submit(job_of(UserId{3}, 16, kHour));
  sched.submit(job_of(UserId{1}, 8, kHour));
  sched.submit(job_of(UserId{2}, 8, kHour));
  engine.run();
  ASSERT_EQ(start_order.size(), 4u);
  EXPECT_EQ(start_order[2], UserId{1}) << "FIFO keeps submission order";
}

TEST(FairShare, EqualUsersKeepFifo) {
  Engine engine;
  ResourceScheduler sched(engine, machine(), fair_cfg());
  std::vector<UserId> start_order;
  sched.add_on_start([&](const Job& j) { start_order.push_back(j.req.user); });
  sched.submit(job_of(UserId{9}, 16, kHour));  // blocker
  sched.submit(job_of(UserId{4}, 8, kHour));
  sched.submit(job_of(UserId{5}, 8, kHour));
  engine.run();
  ASSERT_EQ(start_order.size(), 3u);
  EXPECT_EQ(start_order[1], UserId{4});
  EXPECT_EQ(start_order[2], UserId{5});
}

TEST(FairShare, DecayRestoresPriority) {
  Engine engine;
  ResourceScheduler sched(engine, machine(), fair_cfg());
  std::vector<UserId> start_order;
  sched.add_on_start([&](const Job& j) { start_order.push_back(j.req.user); });
  // User 1 heavy at t=0; user 2 heavier but long ago relative to decay.
  sched.submit(job_of(UserId{1}, 8, 2 * kHour));
  sched.submit(job_of(UserId{2}, 8, 3 * kHour));
  engine.run();
  // Jump 10 half-lives: user 2's usage decays to ~nothing more than user
  // 1's (both decay equally)... instead add fresh usage for user 1 only.
  engine.run_until(engine.now() + 70 * kDay);
  sched.submit(job_of(UserId{1}, 16, 4 * kHour));
  engine.run();
  // Now user 1 is the recent heavy user; competing jobs favour user 2.
  sched.submit(job_of(UserId{9}, 16, kHour));  // blocker
  sched.submit(job_of(UserId{1}, 8, kHour));
  sched.submit(job_of(UserId{2}, 8, kHour));
  engine.run();
  const auto n = start_order.size();
  ASSERT_GE(n, 2u);
  EXPECT_EQ(start_order[n - 2], UserId{2});
  EXPECT_EQ(start_order[n - 1], UserId{1});
}

TEST(FairShare, ConfigValidation) {
  Engine engine;
  SchedulerConfig cfg;
  cfg.fair_share = true;
  cfg.fair_share_half_life = 0;
  EXPECT_THROW(ResourceScheduler(engine, machine(), cfg), PreconditionError);
}

}  // namespace
}  // namespace tg
