// Fault-injection semantics: outage preemption and requeue at the
// scheduler, the FaultModel's outage/hazard/brownout processes, resource
// avoidance in the metascheduler, and determinism of faulty runs.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "gateway/gateway.hpp"
#include "infra/platform.hpp"
#include "meta/selector.hpp"
#include "sched/pool.hpp"
#include "sched/scheduler.hpp"
#include "util/error.hpp"
#include "workload/scenario.hpp"

namespace tg {
namespace {

ComputeResource test_resource(int nodes = 16, int cores = 8) {
  ComputeResource r;
  r.id = ResourceId{0};
  r.site = SiteId{0};
  r.name = "test";
  r.nodes = nodes;
  r.cores_per_node = cores;
  r.max_walltime = 48 * kHour;
  return r;
}

JobRequest simple_job(int nodes, Duration actual, Duration requested = 0) {
  JobRequest req;
  req.user = UserId{1};
  req.project = ProjectId{1};
  req.nodes = nodes;
  req.actual_runtime = actual;
  req.requested_walltime = requested > 0 ? requested : actual;
  return req;
}

struct Harness {
  Engine engine;
  ComputeResource res;
  ResourceScheduler sched;
  std::vector<Job> finished;

  explicit Harness(SchedulerConfig cfg = {}, int nodes = 16)
      : res(test_resource(nodes)), sched(engine, res, cfg) {
    sched.add_on_end([this](const Job& j) { finished.push_back(j); });
  }
};

TEST(Outage, PreemptsRequeuesAndCompletes) {
  SchedulerConfig cfg;
  cfg.outage_retry_backoff = 10 * kMinute;
  Harness h(cfg);
  const JobId id = h.sched.submit(simple_job(16, 4 * kHour));
  h.engine.run_until(kHour);

  const int taken = h.sched.begin_outage(16, kHour + 2 * kHour);
  EXPECT_EQ(taken, 16);
  EXPECT_EQ(h.sched.nodes_down(), 16);
  EXPECT_EQ(h.sched.available_nodes(), 0);
  // The lost attempt was reported immediately with kRequeued.
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].id, id);
  EXPECT_EQ(h.finished[0].state, JobState::kRequeued);
  EXPECT_EQ(h.finished[0].start_time, 0);
  EXPECT_EQ(h.finished[0].end_time, kHour);

  h.engine.run_until(3 * kHour);
  h.sched.end_outage(16);
  h.engine.run();
  // Second attempt runs to completion after the repair; the first hour of
  // work was lost, so the rerun takes the full 4 hours.
  ASSERT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.finished[1].id, id);
  EXPECT_EQ(h.finished[1].state, JobState::kCompleted);
  EXPECT_GE(h.finished[1].start_time, 3 * kHour);
  EXPECT_EQ(h.finished[1].runtime(), 4 * kHour);
  EXPECT_EQ(h.finished[1].preemptions, 1);
  EXPECT_EQ(h.sched.free_nodes(), 16);
  EXPECT_EQ(h.sched.metrics().jobs_preempted(), 1u);
  EXPECT_EQ(h.sched.metrics().jobs_requeued(), 1u);
  EXPECT_EQ(h.sched.metrics().jobs_killed_by_outage(), 0u);
  EXPECT_DOUBLE_EQ(h.sched.metrics().lost_core_seconds(), 3600.0 * 16 * 8);
}

TEST(Outage, BackoffDelaysRequeue) {
  SchedulerConfig cfg;
  cfg.outage_retry_backoff = kHour;
  Harness h(cfg);
  h.sched.submit(simple_job(16, 8 * kHour));
  h.engine.run_until(kMinute);
  h.sched.begin_outage(16, 2 * kMinute);
  h.engine.run_until(2 * kMinute);
  h.sched.end_outage(16);
  h.engine.run();
  // Nodes were back at 2min but the backoff holds the job out until 1h1min.
  ASSERT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.finished[1].start_time, kMinute + kHour);
}

TEST(Outage, RetryBudgetExhaustionKills) {
  SchedulerConfig cfg;
  cfg.outage_retry_limit = 1;
  cfg.outage_retry_backoff = kMinute;
  Harness h(cfg);
  const JobId id = h.sched.submit(simple_job(16, 10 * kHour));
  h.engine.run_until(kHour);
  h.sched.begin_outage(16, kHour + kMinute);
  h.sched.end_outage(16);
  h.engine.run_until(2 * kHour);  // past backoff: second attempt running
  h.sched.begin_outage(16, 3 * kHour);
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.finished[0].state, JobState::kRequeued);
  EXPECT_EQ(h.finished[1].state, JobState::kKilledByOutage);
  EXPECT_EQ(h.finished[1].id, id);
  EXPECT_EQ(h.sched.metrics().jobs_killed_by_outage(), 1u);
  // The job is gone: nothing requeues after the kill.
  h.sched.end_outage(16);
  h.engine.run();
  EXPECT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.sched.running_jobs(), 0u);
  EXPECT_EQ(h.sched.queue_length(), 0u);
}

TEST(Outage, VictimsAreYoungestFirst) {
  Harness h;
  const JobId old_job = h.sched.submit(simple_job(8, 10 * kHour));
  h.engine.run_until(kHour);
  h.sched.submit(simple_job(8, 10 * kHour));
  h.engine.run_until(2 * kHour);
  // Need 4 nodes: preempting the younger 8-node job suffices.
  EXPECT_EQ(h.sched.begin_outage(4, 3 * kHour), 4);
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_NE(h.finished[0].id, old_job);
  EXPECT_EQ(h.finished[0].state, JobState::kRequeued);
  EXPECT_EQ(h.sched.job(old_job).state, JobState::kRunning);
}

TEST(Outage, PartialTakesOnlyFreeNodesWhenIdle) {
  Harness h;
  EXPECT_EQ(h.sched.begin_outage(5, kHour), 5);
  EXPECT_EQ(h.sched.free_nodes(), 11);
  EXPECT_EQ(h.sched.available_nodes(), 11);
  // A second overlapping outage can take at most what is still up.
  EXPECT_EQ(h.sched.begin_outage(16, 2 * kHour), 11);
  EXPECT_EQ(h.sched.nodes_down(), 16);
  h.sched.end_outage(11);
  h.sched.end_outage(5);
  EXPECT_EQ(h.sched.nodes_down(), 0);
  EXPECT_EQ(h.sched.free_nodes(), 16);
  EXPECT_THROW(h.sched.end_outage(1), PreconditionError);
}

TEST(Outage, QueuedJobsWaitOutTheOutage) {
  Harness h;
  h.sched.begin_outage(16, 5 * kHour);
  h.sched.submit(simple_job(16, kHour));
  h.engine.run_until(4 * kHour);
  EXPECT_EQ(h.sched.running_jobs(), 0u);  // nothing can start
  h.sched.end_outage(16);
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].state, JobState::kCompleted);
  EXPECT_GE(h.finished[0].start_time, 4 * kHour);
}

TEST(Outage, BreaksReservationWhoseNodesDied) {
  Harness h;
  const ReservationId rid = h.sched.reserve(2 * kHour, kHour, 16);
  ASSERT_TRUE(rid.valid());
  const JobId jid = h.sched.attach_to_reservation(rid, simple_job(16, kHour));
  h.engine.run_until(kHour);
  h.sched.begin_outage(16, 5 * kHour);
  h.engine.run_until(3 * kHour);
  // Window opened while the machine was down: reservation broken, attached
  // job cancelled (it never ran, so kCancelled not kKilledByOutage).
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].id, jid);
  EXPECT_EQ(h.finished[0].state, JobState::kCancelled);
  h.sched.end_outage(16);
  h.engine.run();
  EXPECT_EQ(h.sched.free_nodes(), 16);
}

TEST(Interrupt, KillsRunningJobOnly) {
  Harness h;
  const JobId running = h.sched.submit(simple_job(16, 4 * kHour));
  const JobId queued = h.sched.submit(simple_job(16, kHour));
  h.engine.run_until(kHour);
  EXPECT_FALSE(h.sched.interrupt(queued, JobState::kFailed));
  EXPECT_FALSE(h.sched.interrupt(JobId{999}, JobState::kFailed));
  EXPECT_THROW(h.sched.interrupt(running, JobState::kCompleted),
               PreconditionError);
  EXPECT_TRUE(h.sched.interrupt(running, JobState::kFailed));
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].id, running);
  EXPECT_EQ(h.finished[0].state, JobState::kFailed);
  EXPECT_EQ(h.finished[0].end_time, kHour);
  h.engine.run();
  // The queued job takes over the freed nodes.
  ASSERT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.finished[1].id, queued);
  EXPECT_EQ(h.finished[1].state, JobState::kCompleted);
}

TEST(FaultModel, OutageLoopTakesAndRepairsNodes) {
  Engine engine;
  const Platform platform = mini_platform();
  SchedulerPool pool(engine, platform);
  FaultConfig config;
  config.outage.mtbf_hours = 24.0;
  config.outage.repair = OutageProcess::Repair::kFixed;
  config.outage.repair_mean_hours = 2.0;
  FaultModel faults(engine, pool, config, 30 * kDay, Rng(7));
  faults.start();
  engine.run();
  EXPECT_GT(faults.stats().outages, 0u);
  EXPECT_EQ(faults.stats().repairs, faults.stats().outages);
  EXPECT_GT(faults.stats().node_hours_lost, 0.0);
  for (const ResourceId id : pool.resource_ids()) {
    EXPECT_EQ(pool.at(id).nodes_down(), 0);
    EXPECT_EQ(pool.at(id).free_nodes(), pool.at(id).resource().nodes);
  }
  // Fault events stop initiating at the horizon, so the drain terminated
  // not far past it.
  EXPECT_LT(engine.now(), 30 * kDay + kDay);
}

TEST(FaultModel, HazardFailsRunningJobs) {
  Engine engine;
  const Platform platform = mini_platform();
  SchedulerPool pool(engine, platform);
  FaultConfig config;
  config.job_failure_rate_per_hour = 2.0;  // mean life 30 min
  FaultModel faults(engine, pool, config, 30 * kDay, Rng(7));
  faults.start();
  int failed = 0;
  int total = 0;
  pool.add_on_end_all([&](const Job& j) {
    ++total;
    if (j.state == JobState::kFailed) ++failed;
  });
  const ResourceId target = pool.resource_ids().front();
  for (int i = 0; i < 20; ++i) {
    pool.at(target).submit(simple_job(1, 4 * kHour));
  }
  engine.run();
  EXPECT_EQ(total, 20);
  EXPECT_GT(failed, 10);  // P(survive 4h at rate 2/h) is ~3e-4
  EXPECT_EQ(faults.stats().hazard_failures, static_cast<std::uint64_t>(failed));
}

TEST(FaultModel, DisabledConfigSchedulesNothing) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  Engine engine;
  const Platform platform = mini_platform();
  SchedulerPool pool(engine, platform);
  FaultModel faults(engine, pool, FaultConfig{}, 30 * kDay, Rng(7));
  faults.start();
  engine.run();
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(faults.stats().outages, 0u);
}

TEST(FaultModel, RejectsBadConfig) {
  Engine engine;
  const Platform platform = mini_platform();
  SchedulerPool pool(engine, platform);
  FaultConfig bad;
  bad.outage.mtbf_hours = 100.0;
  bad.outage.nodes_fraction_min = 0.9;
  bad.outage.nodes_fraction_max = 0.1;
  EXPECT_THROW(FaultModel(engine, pool, bad, kDay, Rng(1)), PreconditionError);
}

TEST(Gateway, BrownoutDropsSubmissions) {
  Engine engine;
  const Platform platform = mini_platform();
  SchedulerPool pool(engine, platform);
  GatewayConfig config;
  config.name = "gw";
  config.community_account = UserId{0};
  config.project = ProjectId{0};
  config.targets = pool.resource_ids();
  Gateway gw(engine, pool, GatewayId{0}, config);
  Rng rng(3);
  GatewayJobSpec spec;
  spec.nodes = 1;
  spec.requested_walltime = kHour;
  spec.actual_runtime = kHour;
  EXPECT_TRUE(gw.available());
  EXPECT_TRUE(gw.submit(EndUserId{0}, spec, rng).valid());
  gw.set_available(false);
  EXPECT_FALSE(gw.submit(EndUserId{1}, spec, rng).valid());
  EXPECT_FALSE(gw.submit(EndUserId{2}, spec, rng).valid());
  EXPECT_EQ(gw.jobs_dropped(), 2u);
  gw.set_available(true);
  EXPECT_TRUE(gw.submit(EndUserId{3}, spec, rng).valid());
  EXPECT_EQ(gw.jobs_submitted(), 2u);
}

TEST(Selector, AvoidsResourcesInOutage) {
  Engine engine;
  const Platform platform = mini_platform();
  SchedulerPool pool(engine, platform);
  ResourceSelector selector;
  const auto ids = pool.resource_ids();
  ASSERT_EQ(ids.size(), 2u);
  // Take down whichever resource the selector would otherwise pick.
  const ResourceId preferred = selector.select(pool, 1, kHour);
  pool.at(preferred).begin_outage(pool.at(preferred).resource().nodes,
                                  kDay);
  const ResourceId alternate = selector.select(pool, 1, kHour);
  EXPECT_NE(alternate, preferred);
  // With every machine down, selection falls back to ignoring
  // availability rather than failing.
  pool.at(alternate).begin_outage(pool.at(alternate).resource().nodes, kDay);
  EXPECT_TRUE(selector.select(pool, 1, kHour).valid());
}

TEST(Scenario, FaultyRunsAreDeterministic) {
  const auto run = [] {
    ScenarioConfig config;
    config.seed = 11;
    config.horizon = 30 * kDay;
    config.mini_platform = true;
    config.faults.outage.mtbf_hours = 48.0;
    config.faults.job_failure_rate_per_hour = 0.001;
    config.faults.gateway_brownouts_per_week = 1.0;
    Scenario scenario(std::move(config));
    scenario.run();
    return std::make_tuple(scenario.db().jobs().size(),
                           scenario.db().total_nu(),
                           scenario.fault_stats().outages,
                           scenario.fault_stats().hazard_failures,
                           scenario.fault_stats().brownouts,
                           scenario.engine().now());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<2>(a), 0u);  // outages actually happened
}

TEST(Scenario, FaultFreeConfigBuildsNoModel) {
  ScenarioConfig config;
  config.seed = 11;
  config.horizon = 5 * kDay;
  config.mini_platform = true;
  Scenario scenario(std::move(config));
  EXPECT_EQ(scenario.faults(), nullptr);
  EXPECT_EQ(scenario.fault_stats().outages, 0u);
}

}  // namespace
}  // namespace tg
