// Metamorphic properties of the feature extractor.
//
// Two relations that must hold for any accounting stream, faulty or not:
//  1. Permutation invariance — features computed from a database whose
//     records were appended in a different order are identical (up to FP
//     summation order). This exercises the non-contiguous index fallback.
//  2. Split-window merge — for every additively mergeable feature, the
//     values over [0, mid) and [mid, end) combine exactly into the value
//     over [0, end). Window-global features (bursts, medians, distinct
//     resources) are excluded by construction.
#include "core/features.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <vector>

#include "workload/scenario.hpp"

namespace tg {
namespace {

constexpr SimTime kFar = 100 * kYear;

void expect_close(double a, double b, const char* what, UserId user) {
  EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(a)))
      << what << " for user " << user;
}

ScenarioConfig make_config(bool faulty) {
  ScenarioConfig config;
  config.mini_platform = true;
  config.horizon = 30 * kDay;
  config.seed = 1234;
  if (faulty) {
    config.faults.outage.mtbf_hours = 120.0;
    config.faults.job_failure_rate_per_hour = 0.001;
  }
  return config;
}

/// Copies every record into a fresh database in a deterministically
/// shuffled order (breaking the end-time-sorted fast path).
UsageDatabase shuffled_copy(const UsageDatabase& db) {
  std::mt19937 gen(987654321u);
  UsageDatabase out;
  auto shuffle_into = [&gen, &out](const auto& records) {
    std::vector<std::size_t> order(records.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::shuffle(order.begin(), order.end(), gen);
    for (const std::size_t i : order) out.add(records[i]);
  };
  shuffle_into(db.jobs());
  shuffle_into(db.transfers());
  shuffle_into(db.sessions());
  return out;
}

void expect_permutation_invariant(const Scenario& scenario) {
  const UsageDatabase shuffled = shuffled_copy(scenario.db());
  const FeatureExtractor extractor(scenario.platform());
  const auto a = extractor.extract(scenario.db(), 0, kFar);
  const auto b = extractor.extract(shuffled, 0, kFar);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const UserFeatures& x = a[i];
    const UserFeatures& y = b[i];
    ASSERT_EQ(x.user, y.user);
    EXPECT_EQ(x.jobs, y.jobs);
    EXPECT_EQ(x.max_width_cores, y.max_width_cores);
    EXPECT_EQ(x.distinct_resources, y.distinct_resources);
    EXPECT_EQ(x.sessions, y.sessions);
    EXPECT_EQ(x.viz_sessions, y.viz_sessions);
    expect_close(x.total_nu, y.total_nu, "total_nu", x.user);
    expect_close(x.total_su, y.total_su, "total_su", x.user);
    expect_close(x.gateway_fraction, y.gateway_fraction, "gateway_fraction",
                 x.user);
    expect_close(x.workflow_fraction, y.workflow_fraction,
                 "workflow_fraction", x.user);
    expect_close(x.burst_fraction, y.burst_fraction, "burst_fraction",
                 x.user);
    expect_close(x.coalloc_fraction, y.coalloc_fraction, "coalloc_fraction",
                 x.user);
    expect_close(x.viz_fraction, y.viz_fraction, "viz_fraction", x.user);
    expect_close(x.failed_fraction, y.failed_fraction, "failed_fraction",
                 x.user);
    expect_close(x.requeued_fraction, y.requeued_fraction,
                 "requeued_fraction", x.user);
    expect_close(x.outage_killed_fraction, y.outage_killed_fraction,
                 "outage_killed_fraction", x.user);
    expect_close(x.max_machine_fraction, y.max_machine_fraction,
                 "max_machine_fraction", x.user);
    expect_close(x.mean_width_cores, y.mean_width_cores, "mean_width_cores",
                 x.user);
    expect_close(x.mean_runtime_s, y.mean_runtime_s, "mean_runtime_s",
                 x.user);
    expect_close(x.median_runtime_s, y.median_runtime_s, "median_runtime_s",
                 x.user);
    expect_close(x.bytes_transferred, y.bytes_transferred,
                 "bytes_transferred", x.user);
  }
}

void expect_split_window_merges(const Scenario& scenario) {
  const FeatureExtractor extractor(scenario.platform());
  const SimTime mid = scenario.config().horizon / 2;
  const auto whole = extractor.extract(scenario.db(), 0, kFar);
  const auto early = extractor.extract(scenario.db(), 0, mid);
  const auto late = extractor.extract(scenario.db(), mid, kFar);
  ASSERT_FALSE(whole.empty());

  std::map<UserId::rep, UserFeatures> merged;
  for (const auto* part : {&early, &late}) {
    for (const UserFeatures& f : *part) {
      auto [it, fresh] = merged.try_emplace(f.user.value(), f);
      if (fresh) continue;
      UserFeatures& m = it->second;
      const double n = m.jobs, k = f.jobs;
      // Job-weighted merge of per-record fractions and means; counts and
      // totals add; maxima take the max.
      if (n + k > 0) {
        const auto wavg = [n, k](double a, double b) {
          return (a * n + b * k) / (n + k);
        };
        m.gateway_fraction = wavg(m.gateway_fraction, f.gateway_fraction);
        m.workflow_fraction = wavg(m.workflow_fraction, f.workflow_fraction);
        m.coalloc_fraction = wavg(m.coalloc_fraction, f.coalloc_fraction);
        m.viz_fraction = wavg(m.viz_fraction, f.viz_fraction);
        m.failed_fraction = wavg(m.failed_fraction, f.failed_fraction);
        m.requeued_fraction = wavg(m.requeued_fraction, f.requeued_fraction);
        m.outage_killed_fraction =
            wavg(m.outage_killed_fraction, f.outage_killed_fraction);
        m.mean_width_cores = wavg(m.mean_width_cores, f.mean_width_cores);
        m.mean_runtime_s = wavg(m.mean_runtime_s, f.mean_runtime_s);
      }
      m.jobs += f.jobs;
      m.total_nu += f.total_nu;
      m.total_su += f.total_su;
      m.bytes_transferred += f.bytes_transferred;
      m.sessions += f.sessions;
      m.viz_sessions += f.viz_sessions;
      m.max_width_cores = std::max(m.max_width_cores, f.max_width_cores);
      m.max_machine_fraction =
          std::max(m.max_machine_fraction, f.max_machine_fraction);
    }
  }

  ASSERT_EQ(merged.size(), whole.size());
  for (const UserFeatures& w : whole) {
    const auto it = merged.find(w.user.value());
    ASSERT_NE(it, merged.end()) << "user " << w.user;
    const UserFeatures& m = it->second;
    EXPECT_EQ(w.jobs, m.jobs);
    EXPECT_EQ(w.sessions, m.sessions);
    EXPECT_EQ(w.viz_sessions, m.viz_sessions);
    EXPECT_EQ(w.max_width_cores, m.max_width_cores);
    expect_close(w.total_nu, m.total_nu, "total_nu", w.user);
    expect_close(w.total_su, m.total_su, "total_su", w.user);
    expect_close(w.bytes_transferred, m.bytes_transferred,
                 "bytes_transferred", w.user);
    expect_close(w.max_machine_fraction, m.max_machine_fraction,
                 "max_machine_fraction", w.user);
    expect_close(w.gateway_fraction, m.gateway_fraction, "gateway_fraction",
                 w.user);
    expect_close(w.workflow_fraction, m.workflow_fraction,
                 "workflow_fraction", w.user);
    expect_close(w.coalloc_fraction, m.coalloc_fraction, "coalloc_fraction",
                 w.user);
    expect_close(w.viz_fraction, m.viz_fraction, "viz_fraction", w.user);
    expect_close(w.failed_fraction, m.failed_fraction, "failed_fraction",
                 w.user);
    expect_close(w.requeued_fraction, m.requeued_fraction,
                 "requeued_fraction", w.user);
    expect_close(w.outage_killed_fraction, m.outage_killed_fraction,
                 "outage_killed_fraction", w.user);
    expect_close(w.mean_width_cores, m.mean_width_cores, "mean_width_cores",
                 w.user);
    expect_close(w.mean_runtime_s, m.mean_runtime_s, "mean_runtime_s",
                 w.user);
  }
}

/// Copies every record into a segmented database (optionally in shuffled
/// order). Same append order as the source -> the extractor walks the same
/// per-user record sequence -> features must be *exactly* equal, across
/// any segment cap (segment boundaries are storage, not semantics).
UsageDatabase segmented_copy(const UsageDatabase& db, std::uint32_t cap,
                             bool shuffle) {
  UsageDatabase out;
  SegmentLogConfig cfg;
  cfg.segment_records = cap;
  out.enable_segments(cfg);
  // Same seed and draw sequence as shuffled_copy, so a shuffled segmented
  // copy lands records in the identical append order as the shuffled
  // monolithic copy.
  std::mt19937 gen(987654321u);
  auto copy_into = [&gen, &out, shuffle](const auto& records) {
    std::vector<std::size_t> order(records.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    if (shuffle) std::shuffle(order.begin(), order.end(), gen);
    for (const std::size_t i : order) out.add(records[i]);
  };
  copy_into(db.jobs());
  copy_into(db.transfers());
  copy_into(db.sessions());
  return out;
}

void expect_exactly_equal(const std::vector<UserFeatures>& a,
                          const std::vector<UserFeatures>& b) {
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const UserFeatures& x = a[i];
    const UserFeatures& y = b[i];
    ASSERT_EQ(x.user, y.user);
    EXPECT_EQ(x.jobs, y.jobs);
    EXPECT_EQ(x.total_nu, y.total_nu);
    EXPECT_EQ(x.total_su, y.total_su);
    EXPECT_EQ(x.gateway_fraction, y.gateway_fraction);
    EXPECT_EQ(x.workflow_fraction, y.workflow_fraction);
    EXPECT_EQ(x.burst_fraction, y.burst_fraction);
    EXPECT_EQ(x.coalloc_fraction, y.coalloc_fraction);
    EXPECT_EQ(x.viz_fraction, y.viz_fraction);
    EXPECT_EQ(x.failed_fraction, y.failed_fraction);
    EXPECT_EQ(x.requeued_fraction, y.requeued_fraction);
    EXPECT_EQ(x.outage_killed_fraction, y.outage_killed_fraction);
    EXPECT_EQ(x.max_width_cores, y.max_width_cores);
    EXPECT_EQ(x.max_machine_fraction, y.max_machine_fraction);
    EXPECT_EQ(x.mean_width_cores, y.mean_width_cores);
    EXPECT_EQ(x.mean_runtime_s, y.mean_runtime_s);
    EXPECT_EQ(x.median_runtime_s, y.median_runtime_s);
    EXPECT_EQ(x.distinct_resources, y.distinct_resources);
    EXPECT_EQ(x.bytes_transferred, y.bytes_transferred);
    EXPECT_EQ(x.sessions, y.sessions);
    EXPECT_EQ(x.viz_sessions, y.viz_sessions);
  }
}

/// Relation 3: storage-mode invariance — a segmented copy of the database
/// (same append order) yields bit-identical features at every segment cap,
/// including caps that split single users' records across many segments.
void expect_segment_cap_invariant(const Scenario& scenario) {
  const FeatureExtractor extractor(scenario.platform());
  const auto want = extractor.extract(scenario.db(), 0, kFar);
  for (const std::uint32_t cap : {1u, 7u, 256u}) {
    const UsageDatabase seg =
        segmented_copy(scenario.db(), cap, /*shuffle=*/false);
    expect_exactly_equal(extractor.extract(seg, 0, kFar), want);
  }
  // And shuffled-into-segments still satisfies relation 1 (same append
  // order as the shuffled monolithic copy -> exactly equal to it).
  const UsageDatabase shuffled_seg =
      segmented_copy(scenario.db(), 32, /*shuffle=*/true);
  const UsageDatabase shuffled_plain = shuffled_copy(scenario.db());
  expect_exactly_equal(extractor.extract(shuffled_seg, 0, kFar),
                       extractor.extract(shuffled_plain, 0, kFar));
}

TEST(FeaturesMetamorphic, PermutationInvariantFaultFree) {
  Scenario scenario(make_config(false));
  scenario.run();
  expect_permutation_invariant(scenario);
}

TEST(FeaturesMetamorphic, PermutationInvariantFaulty) {
  Scenario scenario(make_config(true));
  scenario.run();
  ASSERT_GT(scenario.fault_stats().outages, 0u);
  expect_permutation_invariant(scenario);
}

TEST(FeaturesMetamorphic, SplitWindowMergesFaultFree) {
  Scenario scenario(make_config(false));
  scenario.run();
  expect_split_window_merges(scenario);
}

TEST(FeaturesMetamorphic, SplitWindowMergesFaulty) {
  Scenario scenario(make_config(true));
  scenario.run();
  ASSERT_GT(scenario.fault_stats().outages, 0u);
  expect_split_window_merges(scenario);
}

TEST(FeaturesMetamorphic, SegmentCapInvariantFaultFree) {
  Scenario scenario(make_config(false));
  scenario.run();
  expect_segment_cap_invariant(scenario);
}

TEST(FeaturesMetamorphic, SegmentCapInvariantFaulty) {
  Scenario scenario(make_config(true));
  scenario.run();
  ASSERT_GT(scenario.fault_stats().outages, 0u);
  expect_segment_cap_invariant(scenario);
}

}  // namespace
}  // namespace tg
