#include "core/features.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tg {
namespace {

class FeaturesFixture : public ::testing::Test {
 protected:
  Platform platform = mini_platform();  // ClusterA: 16 nodes x 8 cores
  UsageDatabase db;
  FeatureExtractor extractor{platform};

  JobRecord job(UserId user, int nodes, SimTime submit, SimTime start,
                Duration runtime, double nu = 10.0) {
    JobRecord r;
    r.resource = platform.compute()[0].id;
    r.user = user;
    r.project = ProjectId{0};
    r.submit_time = submit;
    r.start_time = start;
    r.end_time = start + runtime;
    r.nodes = nodes;
    r.cores_per_node = 8;
    r.requested_walltime = runtime;
    r.charged_nu = nu;
    r.charged_su = nu;
    return r;
  }
};

TEST_F(FeaturesFixture, BasicAggregates) {
  db.add(job(UserId{1}, 2, 0, 0, kHour, 5.0));
  db.add(job(UserId{1}, 4, kHour, kHour, 2 * kHour, 20.0));
  const UserFeatures f = extractor.extract_user(db, UserId{1}, 0, kDay);
  EXPECT_EQ(f.jobs, 2);
  EXPECT_DOUBLE_EQ(f.total_nu, 25.0);
  EXPECT_EQ(f.max_width_cores, 32);
  EXPECT_DOUBLE_EQ(f.mean_width_cores, 24.0);
  EXPECT_NEAR(f.mean_runtime_s, 1.5 * 3600, 1e-9);
  EXPECT_DOUBLE_EQ(f.max_machine_fraction, 4.0 / 16.0);
  EXPECT_EQ(f.distinct_resources, 1);
}

TEST_F(FeaturesFixture, WindowFiltersByEndTime) {
  db.add(job(UserId{1}, 1, 0, 0, kHour));
  db.add(job(UserId{1}, 1, 0, 5 * kDay, kHour));
  EXPECT_EQ(extractor.extract_user(db, UserId{1}, 0, kDay).jobs, 1);
  EXPECT_EQ(extractor.extract_user(db, UserId{1}, 0, 10 * kDay).jobs, 2);
  EXPECT_EQ(extractor.extract_user(db, UserId{1}, 2 * kDay, 10 * kDay).jobs,
            1);
}

TEST_F(FeaturesFixture, FractionsFromTags) {
  JobRecord g = job(UserId{2}, 1, 0, 0, kHour);
  g.gateway = GatewayId{0};
  db.add(g);
  JobRecord w = job(UserId{2}, 1, 0, 0, kHour);
  w.workflow = WorkflowId{1};
  db.add(w);
  JobRecord c = job(UserId{2}, 1, 0, 0, kHour);
  c.coallocated = true;
  db.add(c);
  JobRecord v = job(UserId{2}, 1, 0, 0, kHour);
  v.interactive = true;
  db.add(v);
  const UserFeatures f = extractor.extract_user(db, UserId{2}, 0, kDay);
  EXPECT_DOUBLE_EQ(f.gateway_fraction, 0.25);
  EXPECT_DOUBLE_EQ(f.workflow_fraction, 0.25);
  EXPECT_DOUBLE_EQ(f.coalloc_fraction, 0.25);
  EXPECT_DOUBLE_EQ(f.viz_fraction, 0.25);
}

TEST_F(FeaturesFixture, FailureFraction) {
  JobRecord a = job(UserId{3}, 1, 0, 0, kHour);
  a.final_state = JobState::kFailed;
  db.add(a);
  db.add(job(UserId{3}, 1, 0, 0, kHour));
  const UserFeatures f = extractor.extract_user(db, UserId{3}, 0, kDay);
  EXPECT_DOUBLE_EQ(f.failed_fraction, 0.5);
}

TEST_F(FeaturesFixture, BurstDetectionFindsManualEnsembles) {
  // 10 identical-geometry jobs within minutes: a manual sweep.
  for (int i = 0; i < 10; ++i) {
    db.add(job(UserId{4}, 2, i * kMinute, kHour, kHour));
  }
  const UserFeatures f = extractor.extract_user(db, UserId{4}, 0, kDay);
  EXPECT_DOUBLE_EQ(f.burst_fraction, 1.0);
}

TEST_F(FeaturesFixture, SpreadJobsAreNotBursts) {
  // Same geometry but a day apart each.
  for (int i = 0; i < 10; ++i) {
    db.add(job(UserId{5}, 2, i * kDay, i * kDay, kHour));
  }
  const UserFeatures f =
      extractor.extract_user(db, UserId{5}, 0, 100 * kDay);
  EXPECT_DOUBLE_EQ(f.burst_fraction, 0.0);
}

TEST_F(FeaturesFixture, DifferentGeometryBreaksBursts) {
  // Many near-simultaneous jobs, but all different widths.
  for (int i = 0; i < 10; ++i) {
    db.add(job(UserId{6}, 1 + i, i * kMinute, kHour, kHour));
  }
  const UserFeatures f = extractor.extract_user(db, UserId{6}, 0, kDay);
  EXPECT_DOUBLE_EQ(f.burst_fraction, 0.0);
}

TEST_F(FeaturesFixture, TransfersAndSessionsCounted) {
  TransferRecord t;
  t.user = UserId{7};
  t.bytes = 5e12;
  t.end_time = kHour;
  db.add(t);
  SessionRecord s;
  s.user = UserId{7};
  s.end_time = 2 * kHour;
  s.viz = true;
  db.add(s);
  const UserFeatures f = extractor.extract_user(db, UserId{7}, 0, kDay);
  EXPECT_EQ(f.jobs, 0);
  EXPECT_DOUBLE_EQ(f.bytes_transferred, 5e12);
  EXPECT_EQ(f.sessions, 1);
  EXPECT_EQ(f.viz_sessions, 1);
  // bytes_per_nu with zero NU returns raw bytes.
  EXPECT_DOUBLE_EQ(f.bytes_per_nu(), 5e12);
}

TEST_F(FeaturesFixture, ExtractCoversAllActiveUsers) {
  db.add(job(UserId{1}, 1, 0, 0, kHour));
  db.add(job(UserId{3}, 1, 0, 0, kHour));
  TransferRecord t;
  t.user = UserId{9};
  t.bytes = 1e9;
  t.end_time = kHour;
  db.add(t);
  const auto all = extractor.extract(db, 0, kDay);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].user, UserId{1});
  EXPECT_EQ(all[1].user, UserId{3});
  EXPECT_EQ(all[2].user, UserId{9});
}

TEST_F(FeaturesFixture, ExtractMatchesExtractUser) {
  for (int i = 0; i < 20; ++i) {
    db.add(job(UserId{i % 3}, 1 + i % 4, i * kHour, i * kHour, kHour));
  }
  const auto all = extractor.extract(db, 0, kYear);
  for (const auto& f : all) {
    const UserFeatures single =
        extractor.extract_user(db, f.user, 0, kYear);
    EXPECT_EQ(f.jobs, single.jobs);
    EXPECT_DOUBLE_EQ(f.total_nu, single.total_nu);
    EXPECT_DOUBLE_EQ(f.burst_fraction, single.burst_fraction);
  }
}

TEST_F(FeaturesFixture, ConfigValidation) {
  FeatureConfig bad;
  bad.burst_min_jobs = 1;
  EXPECT_THROW(FeatureExtractor(platform, bad), PreconditionError);
  bad = FeatureConfig{};
  bad.burst_window = 0;
  EXPECT_THROW(FeatureExtractor(platform, bad), PreconditionError);
}

class BurstThreshold : public ::testing::TestWithParam<int> {};

TEST_P(BurstThreshold, ExactlyAtThresholdCounts) {
  Platform platform = mini_platform();
  UsageDatabase db;
  FeatureConfig cfg;
  cfg.burst_min_jobs = GetParam();
  const FeatureExtractor extractor(platform, cfg);
  JobRecord proto;
  proto.resource = platform.compute()[0].id;
  proto.user = UserId{1};
  proto.nodes = 2;
  proto.cores_per_node = 8;
  proto.requested_walltime = kHour;
  proto.start_time = kHour;
  proto.end_time = 2 * kHour;
  for (int i = 0; i < GetParam(); ++i) {
    proto.submit_time = i * kMinute;
    db.add(proto);
  }
  EXPECT_DOUBLE_EQ(
      extractor.extract_user(db, UserId{1}, 0, kDay).burst_fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BurstThreshold,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace tg
