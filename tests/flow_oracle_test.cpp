// Max-min fairness oracle test: the FlowManager's assigned rates are
// compared, mid-simulation, against an independent brute-force progressive
// filling implementation over random topologies and flow sets.
#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "net/flow.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

class FlowOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowOracle, RatesMatchReferenceSolver) {
  Rng rng(GetParam());
  // Random star+chords topology over 6 sites.
  Platform platform;
  std::vector<SiteId> sites;
  for (int i = 0; i < 6; ++i) {
    sites.push_back(platform.add_site("s" + std::to_string(i)));
  }
  ComputeResource c;
  c.site = sites[0];
  c.name = "c";
  c.nodes = 1;
  c.cores_per_node = 1;
  platform.add_compute(c);
  for (int i = 1; i < 6; ++i) {
    platform.add_link(sites[0], sites[static_cast<std::size_t>(i)],
                      rng.uniform(1.0, 10.0), 10 * kMillisecond);
  }
  // A couple of chords make multiple routes possible.
  platform.add_link(sites[1], sites[2], rng.uniform(1.0, 10.0),
                    5 * kMillisecond);
  platform.add_link(sites[3], sites[4], rng.uniform(1.0, 10.0),
                    5 * kMillisecond);

  Engine engine;
  const double host_gbps = rng.uniform(2.0, 20.0);
  FlowManager flows(engine, platform, host_gbps);

  // Launch 12 long flows between random distinct sites.
  std::vector<TransferId> ids;
  std::vector<std::vector<int>> paths;
  for (int f = 0; f < 12; ++f) {
    const auto a = static_cast<std::size_t>(rng.uniform_int(0, 5));
    auto b = static_cast<std::size_t>(rng.uniform_int(0, 5));
    if (b == a) b = (a + 1) % 6;
    ids.push_back(flows.start_transfer(sites[a], sites[b], 1e13, UserId{f},
                                       ProjectId{0}));
    std::vector<int> path;
    for (LinkId l : flows.route(sites[a], sites[b])) {
      path.push_back(l.value());
    }
    paths.push_back(std::move(path));
  }
  // Let all flows activate (max path latency is tiny), then compare.
  engine.run_until(kSecond);

  std::vector<double> caps;
  for (const Link& l : platform.links()) caps.push_back(l.gbps * 1e9 / 8.0);
  // Independent reference: brute-force progressive filling with per-flow
  // host caps.
  std::map<int, double> expected;
  {
    std::vector<double> cap = caps;
    std::vector<int> users(caps.size(), 0);
    std::vector<bool> frozen(paths.size(), false);
    for (const auto& p : paths) {
      for (int l : p) ++users[static_cast<std::size_t>(l)];
    }
    std::size_t remaining = paths.size();
    const double host_cap = host_gbps * 1e9 / 8.0;
    while (remaining > 0) {
      double min_share = host_cap;
      for (std::size_t l = 0; l < cap.size(); ++l) {
        if (users[l] > 0) min_share = std::min(min_share, cap[l] / users[l]);
      }
      for (std::size_t f = 0; f < paths.size(); ++f) {
        if (frozen[f]) continue;
        bool bottlenecked = host_cap <= min_share * (1 + 1e-12);
        for (int l : paths[f]) {
          const auto li = static_cast<std::size_t>(l);
          if (cap[li] / users[li] <= min_share * (1 + 1e-12)) {
            bottlenecked = true;
          }
        }
        if (!bottlenecked) continue;
        expected[static_cast<int>(f)] = min_share;
        frozen[f] = true;
        --remaining;
        for (int l : paths[f]) {
          const auto li = static_cast<std::size_t>(l);
          cap[li] -= min_share;
          --users[li];
        }
      }
    }
  }

  for (std::size_t f = 0; f < ids.size(); ++f) {
    const double measured = flows.flow_rate_bps(ids[f]);
    const double want = expected.at(static_cast<int>(f));
    EXPECT_NEAR(measured, want, want * 1e-9)
        << "flow " << f << " rate mismatch";
  }

  // Sanity: no link oversubscribed by the measured rates.
  std::vector<double> used(caps.size(), 0.0);
  for (std::size_t f = 0; f < ids.size(); ++f) {
    for (int l : paths[f]) {
      used[static_cast<std::size_t>(l)] += flows.flow_rate_bps(ids[f]);
    }
  }
  for (std::size_t l = 0; l < caps.size(); ++l) {
    EXPECT_LE(used[l], caps[l] * (1 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowOracle,
                         ::testing::Values(1ULL, 7ULL, 21ULL, 99ULL,
                                           12345ULL));

}  // namespace
}  // namespace tg
