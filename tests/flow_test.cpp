#include "net/flow.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

constexpr double kGb = 1e9 / 8.0;  // bytes per Gbit

/// Star platform: N spokes around a hub, every link `gbps`.
Platform star_platform(int spokes, double gbps) {
  Platform p;
  const SiteId hub = p.add_site("hub");
  for (int i = 0; i < spokes; ++i) {
    const SiteId s = p.add_site("s" + std::to_string(i));
    p.add_link(hub, s, gbps, 10 * kMillisecond);
  }
  // At least one compute resource keeps Platform sane for other users.
  ComputeResource c;
  c.site = hub;
  c.name = "hubby";
  c.nodes = 1;
  c.cores_per_node = 1;
  p.add_compute(c);
  return p;
}

struct Fixture {
  Platform platform = star_platform(4, 10.0);
  Engine engine;
  FlowManager flows{engine, platform, /*host_gbps=*/10.0};

  SiteId site(int i) const {
    return platform.sites()[static_cast<std::size_t>(i)].id;
  }
};

TEST(FlowRouting, DirectPathThroughHub) {
  Fixture f;
  const auto path = f.flows.route(f.site(1), f.site(2));
  EXPECT_EQ(path.size(), 2u);  // spoke -> hub -> spoke
  EXPECT_EQ(f.flows.path_latency(f.site(1), f.site(2)), 20 * kMillisecond);
}

TEST(FlowRouting, SameSiteIsEmpty) {
  Fixture f;
  EXPECT_TRUE(f.flows.route(f.site(1), f.site(1)).empty());
  EXPECT_EQ(f.flows.path_latency(f.site(1), f.site(1)), 0);
}

TEST(FlowRouting, DisconnectedThrows) {
  Platform p = star_platform(2, 10.0);
  p.add_site("island");
  Engine e;
  FlowManager fm(e, p);
  EXPECT_THROW(fm.route(p.sites()[0].id, p.sites()[3].id), PreconditionError);
}

TEST(Flow, SingleFlowGetsFullBottleneck) {
  Fixture f;
  // 10 Gb/s path, host cap 10 Gb/s -> 1.25 GB/s. 12.5 GB -> 10 s + 20ms.
  bool done = false;
  SimTime end = 0;
  f.flows.start_transfer(f.site(1), f.site(2), 12.5e9, UserId{0},
                         ProjectId{0}, [&](const Flow& fl) {
                           done = true;
                           end = fl.completed;
                         });
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(end, 10 * kSecond + 20 * kMillisecond);
}

TEST(Flow, TwoFlowsShareLink) {
  Fixture f;
  // Both flows traverse the same spoke link (site1 -> site2): equal split.
  std::vector<SimTime> ends;
  for (int i = 0; i < 2; ++i) {
    f.flows.start_transfer(f.site(1), f.site(2), 12.5e9, UserId{i},
                           ProjectId{0},
                           [&](const Flow& fl) { ends.push_back(fl.completed); });
  }
  f.engine.run();
  ASSERT_EQ(ends.size(), 2u);
  // Each gets 5 Gb/s -> 20 s (+latency).
  EXPECT_EQ(ends[0], 20 * kSecond + 20 * kMillisecond);
  EXPECT_EQ(ends[1], 20 * kSecond + 20 * kMillisecond);
}

TEST(Flow, DisjointFlowsDontInterfere) {
  Fixture f;
  // site1->site2 and site3->site0 share only the hub (which is a site,
  // not a link) — all four links distinct, so both run at full rate.
  std::vector<SimTime> ends;
  f.flows.start_transfer(f.site(1), f.site(2), 12.5e9, UserId{0}, ProjectId{0},
                         [&](const Flow& fl) { ends.push_back(fl.completed); });
  f.flows.start_transfer(f.site(3), f.site(4), 12.5e9, UserId{1}, ProjectId{0},
                         [&](const Flow& fl) { ends.push_back(fl.completed); });
  f.engine.run();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], 10 * kSecond + 20 * kMillisecond);
  EXPECT_EQ(ends[1], 10 * kSecond + 20 * kMillisecond);
}

TEST(Flow, MaxMinUnevenShares) {
  // Host cap below link capacity: flow on an empty link is host-limited
  // while the shared-link flows split the remainder of their bottleneck.
  Platform p = star_platform(3, 10.0);
  Engine e;
  FlowManager fm(e, p, /*host_gbps=*/4.0);
  const SiteId s1 = p.sites()[1].id;
  const SiteId s2 = p.sites()[2].id;
  fm.start_transfer(s1, s2, 1e12, UserId{0}, ProjectId{0});
  e.run_until(kSecond);
  // Single flow: host cap 4 Gb/s = 0.5e9 B/s.
  EXPECT_NEAR(fm.flow_rate_bps(TransferId{0}), 0.5e9, 1e3);
}

TEST(Flow, RatesRebalanceOnDeparture) {
  Fixture f;
  // Flow A: 12.5 GB, flow B: 25 GB on the same path. A finishes first at
  // 5 Gb/s, then B speeds to 10 Gb/s.
  SimTime end_a = 0;
  SimTime end_b = 0;
  f.flows.start_transfer(f.site(1), f.site(2), 12.5e9, UserId{0}, ProjectId{0},
                         [&](const Flow& fl) { end_a = fl.completed; });
  f.flows.start_transfer(f.site(1), f.site(2), 25e9, UserId{1}, ProjectId{0},
                         [&](const Flow& fl) { end_b = fl.completed; });
  f.engine.run();
  // A: shares 10Gb/s -> 0.625 GB/s each -> 20 s. B has 12.5 GB left, now
  // at 1.25 GB/s -> +10 s = 30 s (+latency).
  EXPECT_EQ(end_a, 20 * kSecond + 20 * kMillisecond);
  EXPECT_EQ(end_b, 30 * kSecond + 20 * kMillisecond);
}

TEST(Flow, ZeroByteTransferCompletesAfterLatency) {
  Fixture f;
  SimTime end = -1;
  f.flows.start_transfer(f.site(1), f.site(2), 0.0, UserId{0}, ProjectId{0},
                         [&](const Flow& fl) { end = fl.completed; });
  f.engine.run();
  EXPECT_EQ(end, 20 * kMillisecond);
}

TEST(Flow, IntraSiteTransferUsesHostCap) {
  Fixture f;
  SimTime end = -1;
  // 1.25 GB at host cap 1.25 GB/s -> 1 s, zero latency.
  f.flows.start_transfer(f.site(1), f.site(1), 1.25e9, UserId{0}, ProjectId{0},
                         [&](const Flow& fl) { end = fl.completed; });
  f.engine.run();
  EXPECT_EQ(end, 1 * kSecond);
}

TEST(Flow, ObserverSeesEveryCompletion) {
  Fixture f;
  int observed = 0;
  f.flows.set_transfer_observer([&](const Flow&) { ++observed; });
  for (int i = 0; i < 5; ++i) {
    f.flows.start_transfer(f.site(1), f.site(2), 1e9, UserId{i}, ProjectId{0});
  }
  f.engine.run();
  EXPECT_EQ(observed, 5);
  EXPECT_EQ(f.flows.completed().size(), 5u);
  EXPECT_EQ(f.flows.active_flows(), 0u);
}

TEST(Flow, CompletedRecordsCarryMetadata) {
  Fixture f;
  f.flows.start_transfer(f.site(1), f.site(3), 2e9, UserId{7}, ProjectId{3});
  f.engine.run();
  ASSERT_EQ(f.flows.completed().size(), 1u);
  const Flow& fl = f.flows.completed().front();
  EXPECT_EQ(fl.user, UserId{7});
  EXPECT_EQ(fl.project, ProjectId{3});
  EXPECT_EQ(fl.total_bytes, 2e9);
  EXPECT_TRUE(fl.done);
  EXPECT_EQ(fl.remaining_bytes, 0.0);
  EXPECT_GT(fl.completed, fl.submitted);
}

TEST(Flow, RejectsNegativeBytes) {
  Fixture f;
  EXPECT_THROW(f.flows.start_transfer(f.site(1), f.site(2), -1.0, UserId{0},
                                      ProjectId{0}),
               PreconditionError);
}

// Conservation property: total bytes delivered equals total bytes injected
// across random flow mixes.
class FlowConservation : public ::testing::TestWithParam<int> {};

TEST_P(FlowConservation, BytesConserved) {
  Fixture f;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  double injected = 0.0;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    const auto s1 = 1 + static_cast<int>(rng.uniform_int(0, 3));
    auto s2 = 1 + static_cast<int>(rng.uniform_int(0, 3));
    const double bytes = rng.uniform(1e8, 5e9);
    injected += bytes;
    f.engine.schedule_at(
        static_cast<SimTime>(rng.uniform_int(0, 10'000)),
        [&f, s1, s2, bytes] {
          f.flows.start_transfer(f.site(s1), f.site(s2), bytes, UserId{0},
                                 ProjectId{0});
        });
  }
  f.engine.run();
  double delivered = 0.0;
  for (const Flow& fl : f.flows.completed()) delivered += fl.total_bytes;
  EXPECT_EQ(f.flows.completed().size(), static_cast<std::size_t>(n));
  EXPECT_NEAR(delivered, injected, injected * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservation, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace tg
