#include "gateway/gateway.hpp"

#include <gtest/gtest.h>

#include "accounting/usage_db.hpp"
#include "util/error.hpp"
#include "util/string_pool.hpp"

namespace tg {
namespace {

struct GatewayFixture : ::testing::Test {
  Platform platform = mini_platform();
  Engine engine;
  SchedulerPool pool{engine, platform};
  UsageDatabase db;
  Recorder recorder{platform, db};
  StringPool labels;

  EndUserId eu(const std::string& label) { return labels.intern(label); }

  GatewayConfig config() {
    GatewayConfig c;
    c.name = "testhub";
    c.community_account = UserId{100};
    c.project = ProjectId{10};
    c.targets = {platform.compute()[0].id, platform.compute()[1].id};
    return c;
  }

  GatewayJobSpec spec() {
    GatewayJobSpec s;
    s.nodes = 1;
    s.actual_runtime = 30 * kMinute;
    s.requested_walltime = kHour;
    return s;
  }
};

TEST_F(GatewayFixture, JobsRunUnderCommunityAccount) {
  recorder.attach(pool);
  Gateway gw(engine, pool, GatewayId{0}, config());
  Rng rng(1);
  gw.submit(eu("alice"), spec(), rng);
  gw.submit(eu("bob"), spec(), rng);
  engine.run();
  ASSERT_EQ(db.jobs().size(), 2u);
  for (const auto& r : db.jobs()) {
    EXPECT_EQ(r.user, UserId{100});
    EXPECT_EQ(r.project, ProjectId{10});
    EXPECT_EQ(r.gateway, GatewayId{0});
  }
  EXPECT_EQ(gw.jobs_submitted(), 2u);
}

TEST_F(GatewayFixture, FullCoverageAttachesAllAttributes) {
  recorder.attach(pool);
  GatewayConfig c = config();
  c.attribute_coverage = 1.0;
  Gateway gw(engine, pool, GatewayId{0}, c);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) gw.submit(eu("u" + std::to_string(i)), spec(), rng);
  engine.run();
  for (const auto& r : db.jobs()) EXPECT_TRUE(r.gateway_end_user.valid());
}

TEST_F(GatewayFixture, ZeroCoverageAttachesNone) {
  recorder.attach(pool);
  GatewayConfig c = config();
  c.attribute_coverage = 0.0;
  Gateway gw(engine, pool, GatewayId{0}, c);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) gw.submit(eu("u" + std::to_string(i)), spec(), rng);
  engine.run();
  for (const auto& r : db.jobs()) EXPECT_FALSE(r.gateway_end_user.valid());
}

TEST_F(GatewayFixture, PartialCoverageApproximatesRate) {
  recorder.attach(pool);
  GatewayConfig c = config();
  c.attribute_coverage = 0.7;
  Gateway gw(engine, pool, GatewayId{0}, c);
  Rng rng(4);
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) gw.submit(eu("u"), spec(), rng);
  engine.run_until(kYear);
  int with = 0;
  for (const auto& r : db.jobs()) {
    if (r.gateway_end_user.valid()) ++with;
  }
  EXPECT_GT(db.jobs().size(), 100u);
  EXPECT_NEAR(static_cast<double>(with) / static_cast<double>(db.jobs().size()),
              0.7, 0.05);
}

TEST_F(GatewayFixture, TargetWeightsRespected) {
  recorder.attach(pool);
  GatewayConfig c = config();
  c.target_weights = {1.0, 0.0};  // everything to ClusterA
  Gateway gw(engine, pool, GatewayId{0}, c);
  Rng rng(5);
  for (int i = 0; i < 30; ++i) gw.submit(eu("u"), spec(), rng);
  engine.run();
  for (const auto& r : db.jobs()) {
    EXPECT_EQ(r.resource, platform.compute()[0].id);
  }
}

TEST_F(GatewayFixture, ConfigValidation) {
  GatewayConfig c = config();
  c.targets.clear();
  EXPECT_THROW(Gateway(engine, pool, GatewayId{0}, c), PreconditionError);
  c = config();
  c.target_weights = {1.0};  // size mismatch
  EXPECT_THROW(Gateway(engine, pool, GatewayId{0}, c), PreconditionError);
  c = config();
  c.attribute_coverage = 1.5;
  EXPECT_THROW(Gateway(engine, pool, GatewayId{0}, c), PreconditionError);
}

TEST_F(GatewayFixture, FailingJobSpecProducesFailedRecord) {
  recorder.attach(pool);
  Gateway gw(engine, pool, GatewayId{0}, config());
  Rng rng(6);
  GatewayJobSpec s = spec();
  s.fails = true;
  s.fail_after = 5 * kMinute;
  gw.submit(eu("alice"), s, rng);
  engine.run();
  ASSERT_EQ(db.jobs().size(), 1u);
  EXPECT_EQ(db.jobs()[0].final_state, JobState::kFailed);
}

}  // namespace
}  // namespace tg
