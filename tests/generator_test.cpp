// Unit-level checks of the traffic generator: each archetype produces the
// record signature its modality is supposed to leave behind.
#include <gtest/gtest.h>

#include <set>

#include "workload/scenario.hpp"

namespace tg {
namespace {

/// A scenario with exactly one archetype populated: the builtin registry
/// with every count zeroed except the named spec's.
ArchetypeRegistry only(std::string_view name, int count) {
  ArchetypeRegistry reg = ArchetypeRegistry::builtin();
  for (const ArchetypeSpec& spec : reg.specs()) reg.set_count(spec.name, 0);
  reg.set_count(name, count);
  return reg;
}

Scenario single_archetype(std::string_view name, int count,
                          std::uint64_t seed = 5,
                          Duration horizon = 60 * kDay) {
  return Scenario(ScenarioConfig::defaults()
                      .with_seed(seed)
                      .with_horizon(horizon)
                      .with_registry(only(name, count)));
}

TEST(Generator, CapacityUsersLeavePlainJobRecords) {
  Scenario s = single_archetype("capacity", 10);
  s.run();
  ASSERT_GT(s.db().jobs().size(), 50u);
  for (const JobRecord& r : s.db().jobs()) {
    EXPECT_FALSE(r.gateway.valid());
    EXPECT_FALSE(r.workflow.valid());
    EXPECT_FALSE(r.coallocated);
    EXPECT_FALSE(r.interactive);
  }
  const auto campaigns = s.generator().campaigns();
  EXPECT_GT(campaigns[static_cast<std::size_t>(Modality::kCapacityBatch)],
            0u);
}

TEST(Generator, CapabilityJobsAreHuge) {
  Scenario s = single_archetype("capability", 10);
  s.run();
  ASSERT_GT(s.db().jobs().size(), 3u);
  for (const JobRecord& r : s.db().jobs()) {
    const ComputeResource& res = s.platform().compute_at(r.resource);
    EXPECT_GE(static_cast<double>(r.nodes) / res.nodes, 0.45);
    EXPECT_GE(res.nodes, 256);  // only big machines
  }
}

TEST(Generator, GatewayEndUsersDriveCommunityAccounts) {
  Scenario s(ScenarioConfig::defaults()
                 .with_seed(6)
                 .with_horizon(60 * kDay)
                 .with_registry(only("gateway", 30))
                 .with_gateway_adoption_ramp(0.0));
  s.run();
  ASSERT_GT(s.db().jobs().size(), 100u);
  std::set<UserId> accounts;
  for (const JobRecord& r : s.db().jobs()) {
    EXPECT_TRUE(r.gateway.valid());
    accounts.insert(r.user);
  }
  // All jobs flow through the (few) community accounts.
  EXPECT_LE(accounts.size(),
            static_cast<std::size_t>(s.config().gateways));
}

TEST(Generator, WorkflowUsersMixTaggedAndBursty) {
  Scenario s = single_archetype("workflow", 15);
  s.run();
  ASSERT_GT(s.db().jobs().size(), 300u);
  long tagged = 0;
  long untagged = 0;
  for (const JobRecord& r : s.db().jobs()) {
    (r.workflow.valid() ? tagged : untagged) += 1;
  }
  // engine_prob = 0.5: both kinds must appear in quantity.
  EXPECT_GT(tagged, 50);
  EXPECT_GT(untagged, 50);
}

TEST(Generator, CoupledUsersProduceCoallocatedPairs) {
  Scenario s = single_archetype("coupled", 8);
  s.run();
  ASSERT_GT(s.db().jobs().size(), 4u);
  std::map<SimTime, int> by_start;
  for (const JobRecord& r : s.db().jobs()) {
    EXPECT_TRUE(r.coallocated);
    ++by_start[r.start_time];
  }
  // Members start simultaneously in pairs.
  for (const auto& [t, n] : by_start) EXPECT_GE(n, 2);
}

TEST(Generator, VizUsersProduceSessionsAndInteractiveJobs) {
  Scenario s = single_archetype("viz", 10);
  s.run();
  EXPECT_GT(s.db().sessions().size(), 10u);
  for (const SessionRecord& rec : s.db().sessions()) EXPECT_TRUE(rec.viz);
  int interactive = 0;
  for (const JobRecord& r : s.db().jobs()) {
    if (r.interactive) {
      ++interactive;
      EXPECT_TRUE(r.viz_resource);
    }
  }
  EXPECT_GT(interactive, 10);
}

TEST(Generator, DataUsersProduceTransfers) {
  Scenario s = single_archetype("data", 10);
  s.run();
  ASSERT_GT(s.db().transfers().size(), 30u);
  for (const TransferRecord& r : s.db().transfers()) {
    EXPECT_GE(r.bytes, 1e10);
    EXPECT_NE(r.src, r.dst);
  }
}

TEST(Generator, ExploratoryUsersFailOften) {
  Scenario s = single_archetype("exploratory", 30);
  s.run();
  ASSERT_GT(s.db().jobs().size(), 50u);
  long failed = 0;
  for (const JobRecord& r : s.db().jobs()) {
    EXPECT_EQ(r.nodes, 1);
    if (r.final_state == JobState::kFailed) ++failed;
  }
  const double frac =
      static_cast<double>(failed) / static_cast<double>(s.db().jobs().size());
  EXPECT_NEAR(frac, 0.30, 0.12);
}

TEST(Generator, CampaignCountersTrackModalities) {
  Scenario s = single_archetype("viz", 5);
  s.run();
  const auto& campaigns = s.generator().campaigns();
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    if (m == static_cast<std::size_t>(Modality::kRemoteInteractive)) {
      EXPECT_GT(campaigns[m], 0u);
    } else {
      EXPECT_EQ(campaigns[m], 0u);
    }
  }
}

}  // namespace
}  // namespace tg
