# Run an experiment binary with its default flags and byte-diff its stdout
# against the committed pre-data-grid baseline capture. Invoked by ctest as
#   cmake -DBIN=<exe> -DBASELINE=<tests/golden/baseline/NAME.out>
#         -DWORK_DIR=<dir> -P golden_baseline.cmake
#
# This is the zero-rate discipline made executable (DESIGN.md §5.10): with
# no data model configured, every pre-existing experiment binary must emit
# exactly the bytes it emitted before src/data existed — the data grid may
# not fork an RNG substream, schedule an event, or touch a format string
# unless a scenario explicitly enables it. Regenerate a baseline only when
# an experiment's output is *meant* to change:
#   ./build/bench/<name> > tests/golden/baseline/<name>.out
if(NOT DEFINED BIN OR NOT DEFINED BASELINE OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
          "golden_baseline.cmake needs -DBIN=... -DBASELINE=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
get_filename_component(name "${BIN}" NAME)

execute_process(
  COMMAND "${BIN}"
  OUTPUT_FILE "${WORK_DIR}/${name}.out"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BIN} exited with ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${BASELINE}" "${WORK_DIR}/${name}.out"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "${name} stdout drifted from the committed baseline ${BASELINE} "
          "(got ${WORK_DIR}/${name}.out) — the unconfigured data model must "
          "not change a byte")
endif()
message(STATUS "${name} byte-identical to ${BASELINE}")
