# Run an experiment binary at --jobs=1 and --jobs=4 and fail unless the two
# stdout captures are byte-identical. Invoked by ctest as
#   cmake -DBIN=<exe> -DWORK_DIR=<dir> -P golden_determinism.cmake
if(NOT DEFINED BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "golden_determinism.cmake needs -DBIN=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(jobs IN ITEMS 1 4)
  execute_process(
    COMMAND "${BIN}" --jobs=${jobs}
    OUTPUT_FILE "${WORK_DIR}/jobs${jobs}.out"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BIN} --jobs=${jobs} exited with ${rc}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/jobs1.out" "${WORK_DIR}/jobs4.out"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "stdout differs between --jobs=1 and --jobs=4 for ${BIN} "
          "(see ${WORK_DIR})")
endif()
message(STATUS "byte-identical stdout at --jobs=1 and --jobs=4")
