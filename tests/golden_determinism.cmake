# Run an experiment binary across every value of one determinism axis and
# fail unless the captures are byte-identical. Invoked by ctest as
#   cmake -DBIN=<exe> -DWORK_DIR=<dir> [-DAXIS=jobs|shards] [-DTRACE=ON]
#         -P golden_determinism.cmake
#
#   AXIS=jobs (default): --jobs=1 vs --jobs=4 — replication/analytics
#     fan-out must not change a byte (DESIGN.md §5.5).
#   AXIS=shards: --no-shard vs --shards=1 vs --shards=4 — the merged
#     reference oracle, inline conservative windows, and pooled windows
#     must fire the identical event sequence (DESIGN.md §5.7).
#
# With -DTRACE=ON each run also writes `--trace=<dir>/<axis><N>.trace.jsonl`
# and the trace exports must be byte-identical too: the trace is keyed by
# sim time and stable ids, so neither the worker count nor the execution
# mode may change a single byte of it. (--metrics is deliberately not
# compared: shard.* counters and barrier timings legitimately differ
# between execution modes.)
if(NOT DEFINED BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "golden_determinism.cmake needs -DBIN=... -DWORK_DIR=...")
endif()
if(NOT DEFINED AXIS)
  set(AXIS "jobs")
endif()

if(AXIS STREQUAL "jobs")
  set(variants 1 4)
elseif(AXIS STREQUAL "shards")
  set(variants 0 1 4)
else()
  message(FATAL_ERROR "unknown AXIS '${AXIS}' (expected jobs or shards)")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(v IN LISTS variants)
  if(AXIS STREQUAL "shards" AND v EQUAL 0)
    set(run_args --no-shard)  # spell out the reference oracle
  else()
    set(run_args --${AXIS}=${v})
  endif()
  if(TRACE)
    list(APPEND run_args --trace=${WORK_DIR}/${AXIS}${v}.trace.jsonl)
  endif()
  execute_process(
    COMMAND "${BIN}" ${run_args}
    OUTPUT_FILE "${WORK_DIR}/${AXIS}${v}.out"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BIN} ${run_args} exited with ${rc}")
  endif()
endforeach()

list(GET variants 0 ref)
foreach(v IN LISTS variants)
  if(v EQUAL ${ref})
    continue()
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/${AXIS}${ref}.out" "${WORK_DIR}/${AXIS}${v}.out"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "stdout differs between --${AXIS}=${ref} and --${AXIS}=${v} for "
            "${BIN} (see ${WORK_DIR})")
  endif()
  if(TRACE)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
              "${WORK_DIR}/${AXIS}${ref}.trace.jsonl"
              "${WORK_DIR}/${AXIS}${v}.trace.jsonl"
      RESULT_VARIABLE trace_diff)
    if(NOT trace_diff EQUAL 0)
      message(FATAL_ERROR
              "--trace output differs between --${AXIS}=${ref} and "
              "--${AXIS}=${v} for ${BIN} (see ${WORK_DIR})")
    endif()
  endif()
endforeach()
message(STATUS "byte-identical output across --${AXIS}={${variants}}")
