# Run an experiment binary at --jobs=1 and --jobs=4 and fail unless the two
# stdout captures are byte-identical. Invoked by ctest as
#   cmake -DBIN=<exe> -DWORK_DIR=<dir> [-DTRACE=ON] -P golden_determinism.cmake
# With -DTRACE=ON each run also writes `--trace=<dir>/jobs<N>.trace.jsonl`
# and the two trace exports must be byte-identical too — the determinism
# contract of DESIGN.md §5.5: the trace is keyed by sim time and stable ids,
# so the worker count must not change a single byte of it.
if(NOT DEFINED BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "golden_determinism.cmake needs -DBIN=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(jobs IN ITEMS 1 4)
  set(run_args --jobs=${jobs})
  if(TRACE)
    list(APPEND run_args --trace=${WORK_DIR}/jobs${jobs}.trace.jsonl)
  endif()
  execute_process(
    COMMAND "${BIN}" ${run_args}
    OUTPUT_FILE "${WORK_DIR}/jobs${jobs}.out"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BIN} --jobs=${jobs} exited with ${rc}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/jobs1.out" "${WORK_DIR}/jobs4.out"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "stdout differs between --jobs=1 and --jobs=4 for ${BIN} "
          "(see ${WORK_DIR})")
endif()
message(STATUS "byte-identical stdout at --jobs=1 and --jobs=4")

if(TRACE)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/jobs1.trace.jsonl" "${WORK_DIR}/jobs4.trace.jsonl"
    RESULT_VARIABLE trace_diff)
  if(NOT trace_diff EQUAL 0)
    message(FATAL_ERROR
            "--trace output differs between --jobs=1 and --jobs=4 for ${BIN} "
            "(see ${WORK_DIR})")
  endif()
  message(STATUS "byte-identical --trace output at --jobs=1 and --jobs=4")
endif()
