# Run an experiment binary with the incremental plan cache (the default)
# and with --exact-replan (from-scratch reference planner) and fail unless
# the two stdout captures are byte-identical. Invoked by ctest as
#   cmake -DBIN=<exe> -DWORK_DIR=<dir> -P golden_exact_replan.cmake
# This is the end-to-end half of the plan-cache equivalence contract
# (DESIGN.md §5.6): caching is a pure performance optimization, so every
# table an experiment prints — modality shares, job counts, NU totals —
# must come out identical either way.
if(NOT DEFINED BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "golden_exact_replan.cmake needs -DBIN=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

foreach(mode IN ITEMS cached exact)
  set(run_args --jobs=1)
  if(mode STREQUAL "exact")
    list(APPEND run_args --exact-replan)
  endif()
  execute_process(
    COMMAND "${BIN}" ${run_args}
    OUTPUT_FILE "${WORK_DIR}/${mode}.out"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BIN} (${mode}) exited with ${rc}")
  endif()
endforeach()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/cached.out" "${WORK_DIR}/exact.out"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "stdout differs between the incremental plan cache and "
          "--exact-replan for ${BIN} (see ${WORK_DIR})")
endif()
message(STATUS "byte-identical stdout with and without --exact-replan")
