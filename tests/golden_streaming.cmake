# Streaming-vs-batch equivalence, end to end: the batch quarterly pass
# (default), classify-on-advance streaming (--streaming), and streaming on
# top of the spillable columnar segment log (--streaming --segment-cap=N
# --spill-dir=...) must print byte-identical stdout (DESIGN.md §5.9).
# Invoked by ctest as
#   cmake -DBIN=<exe> -DWORK_DIR=<dir> -P golden_streaming.cmake
if(NOT DEFINED BIN OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "golden_streaming.cmake needs -DBIN=... -DWORK_DIR=...")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/spill")

set(variants batch stream spill)
set(args_batch "")
set(args_stream --streaming)
# A small cap relative to the two-year record volume, so many segments
# seal and the resident budget forces real spills + mmap reads.
set(args_spill --streaming --segment-cap=4096 --spill-dir=${WORK_DIR}/spill)

foreach(v IN LISTS variants)
  execute_process(
    COMMAND "${BIN}" ${args_${v}}
    OUTPUT_FILE "${WORK_DIR}/${v}.out"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${BIN} ${args_${v}} exited with ${rc}")
  endif()
endforeach()

foreach(v stream spill)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${WORK_DIR}/batch.out" "${WORK_DIR}/${v}.out"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "stdout differs between the batch pass and '${args_${v}}' for "
            "${BIN} (see ${WORK_DIR})")
  endif()
endforeach()
message(STATUS "byte-identical output across batch/streaming/spill")
