#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tg {
namespace {

TEST(Histogram, BinsEvenly) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, CountsLandInRightBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(3.0);
  h.add(3.5);
  h.add(9.9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, OutOfRangeClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(1e9);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
}

TEST(Histogram, WeightedCounts) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 2.5);
  h.add(3.0, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.count(1), 0.5);
}

TEST(Histogram, CdfMonotoneEndsAtOne) {
  Histogram h(0.0, 10.0, 10);
  for (double x = 0.5; x < 10.0; x += 1.0) h.add(x);
  const auto cdf = h.cdf();
  double prev = 0.0;
  for (const auto& [edge, frac] : cdf) {
    EXPECT_GE(frac, prev);
    prev = frac;
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Histogram, EmptyCdfIsZero) {
  Histogram h(0.0, 1.0, 4);
  for (const auto& [edge, frac] : h.cdf()) EXPECT_DOUBLE_EQ(frac, 0.0);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(Histogram(1.0, 1.0, 3), PreconditionError);
  EXPECT_THROW(Histogram(2.0, 1.0, 3), PreconditionError);
}

TEST(Log2Histogram, PowersLandOnBoundaries) {
  Log2Histogram h;
  h.add(1.0);   // bin 0: [1,2)
  h.add(2.0);   // bin 1: [2,4)
  h.add(3.9);   // bin 1
  h.add(4.0);   // bin 2
  h.add(1024.0);  // bin 10
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 2.0);
  EXPECT_DOUBLE_EQ(h.count(2), 1.0);
  EXPECT_DOUBLE_EQ(h.count(10), 1.0);
}

TEST(Log2Histogram, SubUnitGoesToBinZero) {
  Log2Histogram h;
  h.add(0.25);
  h.add(0.0);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
}

TEST(Log2Histogram, UsedBins) {
  Log2Histogram h(16);
  EXPECT_EQ(h.used_bins(), 0u);
  h.add(5.0);  // bin 2
  EXPECT_EQ(h.used_bins(), 3u);
}

TEST(Log2Histogram, OverflowClampsToLastBin) {
  Log2Histogram h(4);
  h.add(1e12);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
}

TEST(Sparkline, ScalesToMax) {
  const std::string s = sparkline({0.0, 4.0, 8.0});
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(sparkline({}), "");
}

}  // namespace
}  // namespace tg
