#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <type_traits>
#include <unordered_set>

namespace tg {
namespace {

TEST(Ids, DefaultIsInvalid) {
  UserId u;
  EXPECT_FALSE(u.valid());
  EXPECT_EQ(u.value(), -1);
}

TEST(Ids, ExplicitConstructionIsValid) {
  const UserId u{7};
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(u.value(), 7);
}

TEST(Ids, ComparisonAndOrdering) {
  EXPECT_EQ(UserId{3}, UserId{3});
  EXPECT_NE(UserId{3}, UserId{4});
  EXPECT_LT(UserId{3}, UserId{4});
  EXPECT_GT(UserId{9}, UserId{4});
}

TEST(Ids, DistinctTagTypesDoNotMix) {
  // Compile-time property: UserId and ProjectId are unrelated types.
  static_assert(!std::is_convertible_v<UserId, ProjectId>);
  static_assert(!std::is_convertible_v<ProjectId, UserId>);
  static_assert(!std::is_convertible_v<int, UserId>);
}

TEST(Ids, SixtyFourBitReps) {
  const JobId j{(1LL << 50) + 5};
  EXPECT_EQ(j.value(), (1LL << 50) + 5);
  static_assert(std::is_same_v<JobId::rep, std::int64_t>);
  static_assert(std::is_same_v<UserId::rep, std::int32_t>);
}

TEST(Ids, Hashable) {
  std::unordered_set<UserId> set;
  set.insert(UserId{1});
  set.insert(UserId{2});
  set.insert(UserId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(UserId{2}));
}

TEST(Ids, Streamable) {
  std::ostringstream os;
  os << UserId{42} << " " << JobId{};
  EXPECT_EQ(os.str(), "42 -1");
}

TEST(Ids, ZeroIsValid) {
  EXPECT_TRUE(UserId{0}.valid());
  EXPECT_FALSE(UserId{-5}.valid());
}

}  // namespace
}  // namespace tg
