#include "fault/invariants.hpp"

#include <gtest/gtest.h>

#include <string>

#include "workload/scenario.hpp"

namespace tg {
namespace {

// A self-consistent completed-job record on mini_platform's ClusterA
// (16 nodes x 8 cores, charge factor 1.0): su = node-hours actually held,
// nu = su x factor. Tests then corrupt one field at a time.
JobRecord good_record(int job, SimTime start, Duration run, int nodes = 2,
                      UserId user = UserId{1}) {
  JobRecord r;
  r.job = JobId{job};
  r.resource = ResourceId{0};
  r.user = user;
  r.project = ProjectId{0};
  r.submit_time = start;
  r.start_time = start;
  r.end_time = start + run;
  r.nodes = nodes;
  r.cores_per_node = 8;
  r.requested_walltime = 2 * run;
  r.final_state = JobState::kCompleted;
  r.disposition = Disposition::kCompleted;
  r.charged_su = to_hours(run) * nodes * 8;
  r.charged_nu = r.charged_su;  // ClusterA factor is 1.0
  return r;
}

bool mentions(const InvariantReport& report, const std::string& needle) {
  for (const std::string& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Invariants, PassesOnHandBuiltConsistentDatabase) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  db.add(good_record(1, 0, kHour));
  db.add(good_record(2, kHour, 2 * kHour, 4, UserId{2}));
  TransferRecord t;
  t.transfer = TransferId{1};
  t.user = UserId{1};
  t.bytes = 1e9;
  t.submit_time = kHour;
  t.end_time = 2 * kHour;
  db.add(t);
  SessionRecord s;
  s.user = UserId{2};
  s.resource = ResourceId{1};
  s.start_time = 0;
  s.end_time = kHour;
  db.add(s);

  const InvariantReport report = check_invariants(platform, db);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 0u);
  EXPECT_NE(report.to_string().find("OK"), std::string::npos);
}

TEST(Invariants, PassesOnFaultFreeScenario) {
  ScenarioConfig config;
  config.mini_platform = true;
  config.horizon = 30 * kDay;
  Scenario scenario(std::move(config));
  scenario.run();
  const InvariantReport report = check_invariants(
      scenario.platform(), scenario.db(), &scenario.ledger(),
      &scenario.community(), &scenario.pool(), scenario.config().charging);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checks, 100u);
}

TEST(Invariants, PassesOnFaultyScenario) {
  ScenarioConfig config;
  config.mini_platform = true;
  config.horizon = 30 * kDay;
  config.faults.outage.mtbf_hours = 96.0;
  config.faults.job_failure_rate_per_hour = 0.001;
  config.faults.gateway_brownouts_per_week = 0.5;
  Scenario scenario(std::move(config));
  scenario.run();
  ASSERT_NE(scenario.faults(), nullptr);
  EXPECT_GT(scenario.fault_stats().outages, 0u);
  const InvariantReport report = check_invariants(
      scenario.platform(), scenario.db(), &scenario.ledger(),
      &scenario.community(), &scenario.pool(), scenario.config().charging);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Invariants, CatchesTimeDisorder) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  JobRecord r = good_record(1, kHour, kHour);
  r.end_time = r.start_time - kMinute;  // ends before it starts
  db.add(r);
  const InvariantReport report = check_invariants(platform, db);
  EXPECT_FALSE(report.ok());
}

TEST(Invariants, CatchesStreamDisorder) {
  // The live Recorder appends in completion order; a stream sorted any
  // other way means the feed was tampered with or merged incorrectly.
  const Platform platform = mini_platform();
  UsageDatabase db;
  db.add(good_record(1, 5 * kHour, kHour));
  db.add(good_record(2, 0, kHour));  // earlier end appended later
  const InvariantReport report = check_invariants(platform, db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "sorted") || mentions(report, "monoton"))
      << report.to_string();
}

TEST(Invariants, CatchesNegativeCharge) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  JobRecord r = good_record(1, 0, kHour);
  r.charged_su = -1.0;
  r.charged_nu = -1.0;
  db.add(r);
  EXPECT_FALSE(check_invariants(platform, db).ok());
}

TEST(Invariants, CatchesChargeFactorMismatch) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  JobRecord r = good_record(1, 0, kHour);
  r.charged_nu = r.charged_su * 3.0;  // ClusterA's factor is 1.0
  db.add(r);
  EXPECT_FALSE(check_invariants(platform, db).ok());
}

TEST(Invariants, CatchesSuNotMatchingHeldNodeHours) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  JobRecord r = good_record(1, 0, kHour);
  r.charged_su *= 2.0;  // charged twice the node-hours actually held
  r.charged_nu = r.charged_su;
  db.add(r);
  EXPECT_FALSE(check_invariants(platform, db).ok());
}

TEST(Invariants, CatchesChargedRefundableAttempt) {
  // Under the default refunding policy an outage-killed attempt must carry
  // a zero charge.
  const Platform platform = mini_platform();
  UsageDatabase db;
  JobRecord r = good_record(1, 0, kHour);
  r.final_state = JobState::kKilledByOutage;
  r.disposition = Disposition::kKilledByOutage;
  db.add(r);  // still charged full node-hours
  EXPECT_FALSE(check_invariants(platform, db).ok());
  // With charging enabled for lost work the same record is legal.
  ChargePolicy charging;
  charging.charge_lost_work = true;
  EXPECT_TRUE(check_invariants(platform, db, nullptr, nullptr, nullptr,
                               charging)
                  .ok());
}

TEST(Invariants, CatchesNonTerminalLastRecord) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  JobRecord r = good_record(1, 0, kHour);
  r.final_state = JobState::kRequeued;
  r.disposition = Disposition::kRequeued;
  r.charged_su = 0.0;
  r.charged_nu = 0.0;
  db.add(r);  // a requeued attempt with no later terminal attempt
  const InvariantReport report = check_invariants(platform, db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "terminal")) << report.to_string();
}

TEST(Invariants, RequeuedThenTerminalAttemptIsLegal) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  JobRecord first = good_record(1, 0, kHour);
  first.final_state = JobState::kRequeued;
  first.disposition = Disposition::kRequeued;
  first.charged_su = 0.0;
  first.charged_nu = 0.0;
  db.add(first);
  JobRecord second = good_record(1, 2 * kHour, 2 * kHour);
  second.submit_time = 0;
  db.add(second);
  const InvariantReport report = check_invariants(platform, db);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Invariants, CatchesTerminalFollowedByAnotherAttempt) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  db.add(good_record(1, 0, kHour));            // terminal
  db.add(good_record(1, 2 * kHour, kHour));    // same job runs again
  EXPECT_FALSE(check_invariants(platform, db).ok());
}

TEST(Invariants, CatchesOverCapacityInterval) {
  // Two concurrent jobs claiming 12 nodes each on a 16-node machine: the
  // records imply 24 nodes in use at once.
  const Platform platform = mini_platform();
  UsageDatabase db;
  db.add(good_record(1, 0, 4 * kHour, 12));
  db.add(good_record(2, kHour, kHour, 12, UserId{2}));
  const InvariantReport report = check_invariants(platform, db);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(mentions(report, "capacity") || mentions(report, "nodes"))
      << report.to_string();
}

TEST(Invariants, BackToBackFullMachineJobsAreLegal) {
  // Release at t must be processed before acquire at t: a job starting the
  // instant its predecessor ends is not a capacity violation.
  const Platform platform = mini_platform();
  UsageDatabase db;
  db.add(good_record(1, 0, kHour, 16));
  db.add(good_record(2, kHour, kHour, 16, UserId{2}));
  const InvariantReport report = check_invariants(platform, db);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- mid-run audits (AuditPhase::kMidRun) ----------------------------------

TEST(Invariants, MidRunAllowsPendingRetry) {
  // A job whose newest record is kRequeued is a violation after the drain
  // (its retry never ended) but perfectly healthy mid-run: the retry is
  // still queued. The mid-run phase must accept exactly this state.
  const Platform platform = mini_platform();
  UsageDatabase db;
  JobRecord r = good_record(1, 0, kHour);
  r.final_state = JobState::kRequeued;
  r.disposition = Disposition::kRequeued;
  r.charged_su = 0.0;
  r.charged_nu = 0.0;
  db.add(r);
  EXPECT_FALSE(check_invariants(platform, db).ok());
  EXPECT_TRUE(check_invariants(platform, db, nullptr, nullptr, nullptr, {},
                               AuditPhase::kMidRun)
                  .ok());
}

TEST(Invariants, MidRunChecksPoolBoundsNotQuiescence) {
  // Pause a simulation in flight: a job is running and nodes are down, so
  // the final-phase quiescence family must flag the pool while the mid-run
  // phase (which only demands consistent node accounting) passes.
  const Platform platform = mini_platform();
  Engine engine;
  SchedulerPool pool(engine, platform);
  UsageDatabase db;
  Recorder recorder(platform, db);
  recorder.attach(pool);

  ResourceScheduler& cluster = pool.at(ResourceId{0});
  JobRequest longer;
  longer.user = UserId{1};
  longer.project = ProjectId{1};
  longer.nodes = 4;
  longer.requested_walltime = 4 * kHour;
  longer.actual_runtime = 4 * kHour;
  JobRequest shorter = longer;
  shorter.nodes = 2;
  shorter.requested_walltime = kHour;
  shorter.actual_runtime = kHour;
  cluster.submit(longer);
  cluster.submit(shorter);  // ends at 1h: the db has one real record
  engine.run_until(2 * kHour);
  ASSERT_GT(cluster.begin_outage(2, kHour), 0);

  const InvariantReport final_report =
      check_invariants(platform, db, nullptr, nullptr, &pool);
  EXPECT_FALSE(final_report.ok());  // running job + downed nodes
  const InvariantReport mid = check_invariants(
      platform, db, nullptr, nullptr, &pool, {}, AuditPhase::kMidRun);
  EXPECT_TRUE(mid.ok()) << mid.to_string();
  EXPECT_GT(mid.checks, 0u);
}

TEST(Invariants, RecurringAuditPassesOnFaultyScenario) {
  // --audit-every end to end: a faulty run audited every two sim-days
  // completes without an InvariantError and still passes the full final
  // audit — and the audits must not perturb the simulation itself.
  ScenarioConfig audited;
  audited.mini_platform = true;
  audited.horizon = 20 * kDay;
  audited.faults.outage.mtbf_hours = 96.0;
  audited.faults.job_failure_rate_per_hour = 0.001;
  audited.audit_every = 2 * kDay;
  ScenarioConfig plain = audited;
  plain.audit_every = 0;

  Scenario with_audits(std::move(audited));
  EXPECT_NO_THROW(with_audits.run());
  const InvariantReport final_report =
      with_audits.audit_now(AuditPhase::kFinal);
  EXPECT_TRUE(final_report.ok()) << final_report.to_string();

  Scenario reference(std::move(plain));
  reference.run();
  EXPECT_EQ(reference.db().jobs().size(), with_audits.db().jobs().size());
  EXPECT_EQ(reference.db().total_nu(), with_audits.db().total_nu());
}

TEST(Invariants, ViolationListIsBounded) {
  const Platform platform = mini_platform();
  UsageDatabase db;
  for (int i = 0; i < 100; ++i) {
    JobRecord r = good_record(i + 1, i * kHour, kHour);
    r.charged_nu = -1.0;  // every record violates charge sanity
    db.add(r);
  }
  const InvariantReport report = check_invariants(platform, db);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.violations.size(), kMaxViolations + 1);
}

}  // namespace
}  // namespace tg
