// The interleaving model checker (DESIGN.md §5.8): engine choice-hook
// steering, bounded DFS exploration with sleep-set pruning, terminal-record
// equivalence, the mutation self-test (a deliberately re-armed
// outage-vs-reservation bug must be caught with a replayable minimal
// trace), reproducer file round-trips, and random tie-break sampling.
#include "mc/explorer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "mc/choice.hpp"
#include "mc/random_check.hpp"
#include "mc/scenarios.hpp"
#include "mc/trace_io.hpp"
#include "util/error.hpp"
#include "workload/scenario.hpp"

namespace tg {
namespace {

using mc::Explorer;
using mc::ExplorerOptions;
using mc::ExplorerResult;

// --- Engine choice-hook steering -------------------------------------------

/// Picks the last (highest-seq) candidate at every tie.
struct PickLast final : ChoiceHook {
  std::size_t choose(const std::vector<Candidate>& tie) override {
    return tie.size() - 1;
  }
};

TEST(ChoiceHook, SteersSameTickTies) {
  Engine engine;
  std::vector<int> fired;
  for (int i = 0; i < 3; ++i) {
    engine.schedule_at(10, [&fired, i] { fired.push_back(i); });
  }
  PickLast last;
  engine.set_choice_hook(&last);
  engine.run();
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 0}));
}

TEST(ChoiceHook, CanonicalPickMatchesUnhookedOrder) {
  const auto run = [](ChoiceHook* hook) {
    Engine engine;
    std::vector<int> fired;
    for (int i = 0; i < 4; ++i) {
      engine.schedule_at(10, [&fired, i] { fired.push_back(i); });
    }
    engine.schedule_at(5, [&fired] { fired.push_back(99); });
    if (hook != nullptr) engine.set_choice_hook(hook);
    engine.run();
    return fired;
  };
  mc::ScriptedChoices canonical;  // empty script = always pick 0
  EXPECT_EQ(run(nullptr), run(&canonical));
  ASSERT_EQ(canonical.log().size(), 3u);  // ties of 4, 3, 2 (singletons skip)
  EXPECT_EQ(canonical.log()[0].tie.size(), 4u);
}

TEST(ChoiceHook, PrioritiesStillOutrankSteering) {
  // The hook resolves ties, it does not create them: a kCompletion event
  // always beats a kDefault event at the same timestamp, whatever the hook
  // would prefer.
  Engine engine;
  std::vector<int> fired;
  engine.schedule_at(10, [&fired] { fired.push_back(1); });
  engine.schedule_at(10, [&fired] { fired.push_back(0); },
                     EventPriority::kCompletion);
  PickLast last;
  engine.set_choice_hook(&last);
  engine.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1}));
}

// --- Bounded exhaustive exploration ----------------------------------------

TEST(McExplorer, TieStormExhaustsAllClasses) {
  // 5 jobs on ClusterA x 3 on ClusterB, all completing at the same tick:
  // 5! x 3! = 720 Mazurkiewicz classes. The explorer must cover every one,
  // pruning cross-site shuffles via sleep sets, with every branch passing
  // the invariant audit and the terminal-equivalence oracle.
  Explorer explorer;
  const ExplorerResult result =
      explorer.explore(mc::make_scenario("tie-storm"));
  EXPECT_TRUE(result.ok()) << result.violation << result.nondeterminism;
  EXPECT_TRUE(result.exhausted);
  EXPECT_FALSE(result.hit_budget);
  EXPECT_GE(result.executions, 500u);  // acceptance floor (ISSUE 8)
  EXPECT_EQ(result.distinct_classes, 720u);
  EXPECT_GT(result.sleep_pruned, 0u);
  EXPECT_GT(result.equivalence_checks, 0u);
  EXPECT_EQ(result.depth_clipped, 0u);
}

TEST(McExplorer, SleepSetsPruneMeasurably) {
  mc::ScenarioTweaks small;
  small.batch_a = 3;
  small.batch_b = 2;

  ExplorerOptions with;
  ExplorerOptions without;
  without.sleep_sets = false;
  const ExplorerResult pruned =
      Explorer(with).explore(mc::make_scenario("tie-storm", small));
  const ExplorerResult raw =
      Explorer(without).explore(mc::make_scenario("tie-storm", small));

  ASSERT_TRUE(pruned.ok()) << pruned.violation;
  ASSERT_TRUE(raw.ok()) << raw.violation;
  EXPECT_TRUE(pruned.exhausted);
  EXPECT_TRUE(raw.exhausted);
  // Same covered semantics (3! x 2! dependent orders per site)...
  EXPECT_EQ(pruned.distinct_classes, 12u);
  EXPECT_EQ(raw.distinct_classes, 12u);
  // ...from measurably fewer executions.
  EXPECT_LT(pruned.executions, raw.executions);
  EXPECT_GT(pruned.sleep_pruned, 0u);
  EXPECT_EQ(raw.sleep_pruned, 0u);
}

TEST(McExplorer, OutageReservationRaceIsCleanUnmutated) {
  // Both orders of the outage-vs-reservation tick (and both orders of the
  // same-tick filler completions around it) must pass: PR 3's shortfall
  // handling survives systematic permutation.
  Explorer explorer;
  const ExplorerResult result =
      explorer.explore(mc::make_scenario("outage-reservation"));
  EXPECT_TRUE(result.ok()) << result.violation << result.nondeterminism;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GE(result.executions, 2u);
}

TEST(McExplorer, MutationIsCaughtWithReplayableMinimalTrace) {
  // Re-arm the historical over-commit: starting the reservation without
  // debiting the outage-shrunk free pool hands nodes out twice. The
  // explorer must find it, shrink the trace, and the trace must replay to
  // the same failure while the canonical order stays green.
  mc::ScenarioTweaks mutated;
  mutated.mutate = true;
  const mc::RunFn run = mc::make_scenario("outage-reservation", mutated);

  Explorer explorer;
  const ExplorerResult result = explorer.explore(run);
  ASSERT_TRUE(result.violation_found);
  EXPECT_FALSE(result.violation.empty());
  ASSERT_FALSE(result.violation_trace.empty());

  // The canonical order never trips the mutation (reservation fires before
  // the outage), so the bug is genuinely interleaving-dependent...
  EXPECT_TRUE(mc::replay_trace(run, {}).ok);
  // ...and the shrunk trace deterministically reproduces it.
  const mc::Outcome bad = mc::replay_trace(run, result.violation_trace);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.failure.empty());
}

TEST(McExplorer, ScriptedReplayIsDeterministic) {
  const mc::RunFn run = mc::make_scenario("outage-reservation");
  const mc::Outcome a = mc::replay_trace(run, {0, 1});
  const mc::Outcome b = mc::replay_trace(run, {0, 1});
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.terminal_hash, b.terminal_hash);
  // The flipped order is a different Mazurkiewicz class (same-site events
  // are dependent), so it may — and here does — differ from canonical.
  const mc::Outcome canonical = mc::replay_trace(run, {});
  EXPECT_TRUE(canonical.ok);
  EXPECT_NE(a.terminal_hash, canonical.terminal_hash);
}

TEST(McScenarios, UnknownNameThrows) {
  EXPECT_THROW((void)mc::make_scenario("no-such-scenario"),
               PreconditionError);
  EXPECT_FALSE(mc::list_scenarios().empty());
}

// --- Reproducer files -------------------------------------------------------

TEST(McTraceIo, RoundTripsThroughDisk) {
  const std::string path = "mc_test_roundtrip.repro";
  mc::TraceFile out;
  out.scenario = "outage-reservation";
  out.mutate = true;
  out.picks = {0, 2, 1};
  out.note = "two\nlines";
  mc::write_trace(path, out);
  const mc::TraceFile in = mc::read_trace(path);
  std::remove(path.c_str());
  EXPECT_EQ(in.scenario, out.scenario);
  EXPECT_EQ(in.mutate, out.mutate);
  EXPECT_EQ(in.picks, out.picks);
}

TEST(McTraceIo, RejectsMalformedFiles) {
  EXPECT_THROW((void)mc::read_trace("does_not_exist.repro"),
               PreconditionError);
  const std::string path = "mc_test_malformed.repro";
  {
    std::ofstream f(path);
    f << "scenario x\nfrobnicate 3\n";
  }
  EXPECT_THROW((void)mc::read_trace(path), PreconditionError);
  std::remove(path.c_str());
}

// --- Random tie-break sampling ----------------------------------------------

TEST(McRandomCheck, SmallFaultyScenarioHoldsUnderRandomTieBreaks) {
  ScenarioConfig config;
  config.mini_platform = true;
  config.horizon = 10 * kDay;
  config.faults.outage.mtbf_hours = 96.0;
  std::ostringstream os;
  EXPECT_TRUE(mc::run_random_tiebreak_check(config, 3, 2026, os)) << os.str();
  // One canonical line plus three samples.
  EXPECT_NE(os.str().find("replay 3"), std::string::npos);
}

}  // namespace
}  // namespace tg
