#include <gtest/gtest.h>

#include "accounting/usage_db.hpp"
#include "meta/coalloc.hpp"
#include "meta/selector.hpp"
#include "util/error.hpp"

namespace tg {
namespace {

JobRequest job(int nodes, Duration runtime) {
  JobRequest r;
  r.user = UserId{1};
  r.project = ProjectId{1};
  r.nodes = nodes;
  r.requested_walltime = runtime;
  r.actual_runtime = runtime;
  return r;
}

struct MetaFixture : ::testing::Test {
  Platform platform = teragrid_2010();
  Engine engine;
  SchedulerPool pool{engine, platform};

  ResourceId by_name(const std::string& n) {
    return platform.compute_by_name(n).id;
  }
};

TEST_F(MetaFixture, SelectorPicksIdleMachine) {
  const ResourceSelector sel;
  // Saturate Kraken; a new job should land elsewhere.
  const ResourceId kraken = by_name("Kraken");
  pool.at(kraken).submit(job(platform.compute_at(kraken).nodes, 10 * kHour));
  const ResourceId pick = sel.select(pool, 64, kHour);
  EXPECT_NE(pick, kraken);
}

TEST_F(MetaFixture, SelectorExcludesVizByDefault) {
  const ResourceSelector sel;
  for (int i = 0; i < 50; ++i) {
    const ResourceId pick = sel.select(pool, 1, kHour);
    EXPECT_FALSE(platform.compute_at(pick).interactive_viz);
  }
}

TEST_F(MetaFixture, SelectorCanIncludeViz) {
  const ResourceSelector sel(/*exclude_viz=*/false);
  const ResourceId longhorn = by_name("Longhorn");
  const ResourceId pick = sel.select(pool, 1, kHour, {longhorn});
  EXPECT_EQ(pick, longhorn);
}

TEST_F(MetaFixture, SelectorSkipsTooSmallMachines) {
  const ResourceSelector sel;
  // 600 nodes only fits Kraken (1032).
  const ResourceId pick = sel.select(pool, 600, kHour);
  EXPECT_EQ(pick, by_name("Kraken"));
}

TEST_F(MetaFixture, SelectorThrowsWhenNothingFits) {
  const ResourceSelector sel;
  EXPECT_THROW((void)sel.select(pool, 100000, kHour), PreconditionError);
}

TEST_F(MetaFixture, SelectorRespectsWalltimeLimits) {
  const ResourceSelector sel;
  // 90h walltime only allowed on Pople (96h limit).
  const ResourceId pick = sel.select(pool, 8, 90 * kHour);
  EXPECT_EQ(pick, by_name("Pople"));
}

TEST_F(MetaFixture, EstimatesVectorAlignsWithCandidates) {
  const ResourceSelector sel;
  const std::vector<ResourceId> cands{by_name("Kraken"), by_name("Longhorn")};
  const auto est = sel.estimates(pool, 8, kHour, cands);
  ASSERT_EQ(est.size(), 2u);
  EXPECT_EQ(est[0], 0);   // idle
  EXPECT_EQ(est[1], -1);  // viz excluded
}

TEST_F(MetaFixture, CoAllocSimultaneousStart) {
  UsageDatabase db;
  Recorder rec(platform, db);
  rec.attach(pool);
  CoAllocator ca(engine, pool);
  CoAllocRequest req;
  req.user = UserId{1};
  req.project = ProjectId{1};
  req.walltime = 2 * kHour;
  req.actual_runtime = 2 * kHour;
  req.members = {{by_name("Kraken"), 32}, {by_name("Ranger"), 16}};
  const auto result = ca.co_allocate(req);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->start, 0);
  EXPECT_EQ(result->jobs.size(), 2u);
  engine.run();
  ASSERT_EQ(db.jobs().size(), 2u);
  EXPECT_EQ(db.jobs()[0].start_time, db.jobs()[1].start_time);
  for (const auto& r : db.jobs()) {
    EXPECT_TRUE(r.coallocated);
    EXPECT_EQ(r.final_state, JobState::kCompleted);
  }
}

TEST_F(MetaFixture, CoAllocWaitsForCommonWindow) {
  CoAllocator ca(engine, pool);
  // Kraken busy for 4h.
  const ResourceId kraken = by_name("Kraken");
  pool.at(kraken).submit(job(platform.compute_at(kraken).nodes, 4 * kHour));
  CoAllocRequest req;
  req.user = UserId{1};
  req.project = ProjectId{1};
  req.walltime = kHour;
  req.actual_runtime = kHour;
  req.members = {{kraken, 32}, {by_name("Ranger"), 16}};
  EXPECT_EQ(ca.estimate_common_start(req), 4 * kHour);
  const auto result = ca.co_allocate(req);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->start, 4 * kHour);
  engine.run();
}

TEST_F(MetaFixture, CoAllocValidation) {
  CoAllocator ca(engine, pool);
  CoAllocRequest req;
  EXPECT_THROW(ca.co_allocate(req), PreconditionError);  // no members
  req.members = {{by_name("Kraken"), 8}};
  req.walltime = 0;
  EXPECT_THROW(ca.co_allocate(req), PreconditionError);
  EXPECT_THROW(CoAllocator(engine, pool, 0), PreconditionError);
  EXPECT_THROW(CoAllocator(engine, pool, kHour, 0), PreconditionError);
}

TEST_F(MetaFixture, CoAllocThreeSites) {
  UsageDatabase db;
  Recorder rec(platform, db);
  rec.attach(pool);
  CoAllocator ca(engine, pool);
  CoAllocRequest req;
  req.user = UserId{2};
  req.project = ProjectId{2};
  req.walltime = kHour;
  req.actual_runtime = 30 * kMinute;  // ends early, reservations release
  req.members = {{by_name("Kraken"), 16},
                 {by_name("Ranger"), 16},
                 {by_name("Abe"), 16}};
  const auto result = ca.co_allocate(req);
  ASSERT_TRUE(result.has_value());
  engine.run();
  EXPECT_EQ(db.jobs().size(), 3u);
  for (const auto& r : db.jobs()) {
    EXPECT_EQ(r.start_time, result->start);
    EXPECT_EQ(r.end_time, result->start + 30 * kMinute);
  }
  // All nodes released.
  for (const auto& m : req.members) {
    EXPECT_EQ(pool.at(m.resource).free_nodes(),
              platform.compute_at(m.resource).nodes);
  }
}

}  // namespace
}  // namespace tg
