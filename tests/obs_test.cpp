// Observability layer semantics (see DESIGN.md §5.5): metric value cells,
// registry owned-vs-bound directory behaviour and its sorted deterministic
// snapshot, trace ring-buffer wraparound (oldest overwritten, dropped
// counted), and TraceSpan begin/end edges with nesting depth.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace tg::obs {
namespace {

// --- Counter / Gauge / Histogram value cells -------------------------------

TEST(CounterTest, IncAddSetAndImplicitRead) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc();
  c.add(40);
  EXPECT_EQ(c.value(), 42u);
  // Counters read as integers in arithmetic and comparisons.
  EXPECT_EQ(c + 8u, 50u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, SetAddMaxOf) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(1.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.max_of(1.0);  // smaller: no change
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.max_of(3.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.25);
  EXPECT_DOUBLE_EQ(g * 2.0, 6.5);
}

TEST(HistogramTest, EmptyReadsAsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, PowerOfTwoBucketPlacement) {
  Histogram h;
  // Bucket 0 holds everything below 1; bucket i holds [2^(i-1), 2^i).
  h.observe(0.0);
  h.observe(0.99);    // bucket 0
  h.observe(1.0);     // bucket 1: [1, 2)
  h.observe(1.99);    // bucket 1
  h.observe(2.0);     // bucket 2: [2, 4)
  h.observe(3.0);     // bucket 2
  h.observe(4.0);     // bucket 3: [4, 8)
  h.observe(1024.0);  // bucket 11: [1024, 2048)
  const auto& buckets = h.buckets();
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(buckets[11], 1u);
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  EXPECT_EQ(total, h.count());
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h;
  h.observe(2.0);
  h.observe(6.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 18.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsSameCell) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  Counter& c = reg.counter("jobs.completed");
  c.inc();
  // Same name: same cell, no second entry.
  reg.counter("jobs.completed").inc();
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("jobs.completed"));
  EXPECT_FALSE(reg.contains("jobs.failed"));
}

TEST(MetricsRegistryTest, OwnedCellsSurviveGrowth) {
  MetricsRegistry reg;
  Counter& first = reg.counter("m.0");
  // Owned cells live in deques: creating many more must not move `first`.
  for (int i = 1; i < 200; ++i) {
    reg.counter("m." + std::to_string(i)).inc();
  }
  first.add(5);
  EXPECT_EQ(reg.counter("m.0").value(), 5u);
  EXPECT_EQ(reg.size(), 200u);
}

TEST(MetricsRegistryTest, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), PreconditionError);
  EXPECT_THROW(reg.histogram("x"), PreconditionError);
  EXPECT_THROW(reg.counter(""), PreconditionError);
}

TEST(MetricsRegistryTest, BoundCellsExportLiveValues) {
  MetricsRegistry reg;
  Counter embedded;  // a component-embedded cell, registry only borrows it
  Gauge high_water;
  reg.bind_counter("engine.events", embedded);
  reg.bind_gauge("engine.heap_high_water", high_water);
  // Increments after binding are visible at snapshot time: the registry
  // holds a pointer, not a copy.
  embedded.add(3);
  high_water.max_of(17.0);
  const std::vector<MetricsRegistry::Sample> samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].name, "engine.events");
  EXPECT_EQ(samples[0].kind, MetricsRegistry::Kind::kCounter);
  EXPECT_DOUBLE_EQ(samples[0].value, 3.0);
  EXPECT_EQ(samples[1].name, "engine.heap_high_water");
  EXPECT_DOUBLE_EQ(samples[1].value, 17.0);
}

TEST(MetricsRegistryTest, DuplicateBindThrows) {
  MetricsRegistry reg;
  Counter a;
  Counter b;
  reg.bind_counter("dup", a);
  EXPECT_THROW(reg.bind_counter("dup", b), PreconditionError);
  // Owned names collide with bound names too, in both directions.
  reg.counter("owned");
  EXPECT_THROW(reg.bind_counter("owned", a), PreconditionError);
  Histogram h;
  reg.bind_histogram("hist", h);
  // Same-kind accessor on a bound name finds the bound cell; a mismatched
  // kind throws.
  EXPECT_EQ(&reg.histogram("hist"), &h);
  EXPECT_THROW(reg.counter("hist"), PreconditionError);
}

TEST(MetricsRegistryTest, SnapshotSortedByNameNotRegistration) {
  MetricsRegistry reg;
  reg.counter("zeta").set(1);
  reg.gauge("alpha").set(2.0);
  Histogram h;
  h.observe(4.0);
  h.observe(8.0);
  reg.bind_histogram("mid", h);
  const std::vector<MetricsRegistry::Sample> samples = reg.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[1].name, "mid");
  EXPECT_EQ(samples[2].name, "zeta");
  // Histogram samples carry the distribution; value is the count.
  EXPECT_EQ(samples[1].kind, MetricsRegistry::Kind::kHistogram);
  ASSERT_NE(samples[1].hist, nullptr);
  EXPECT_DOUBLE_EQ(samples[1].value, 2.0);
  EXPECT_DOUBLE_EQ(samples[1].hist->sum(), 12.0);
  EXPECT_EQ(samples[0].hist, nullptr);
  EXPECT_EQ(samples[2].hist, nullptr);
}

// --- TraceBuffer ring ------------------------------------------------------

TEST(TraceBufferTest, HoldsEventsInEmitOrderBelowCapacity) {
  TraceBuffer buf(8);
  for (std::int64_t t = 0; t < 5; ++t) {
    buf.emit(t, TraceCategory::kScheduler, TracePoint::kJobSubmit,
             /*id=*/100 + t, /*a=*/t * 2);
  }
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.capacity(), 8u);
  EXPECT_EQ(buf.dropped(), 0u);
  EXPECT_EQ(buf.emitted(), 5u);
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::int64_t t = 0; t < 5; ++t) {
    const TraceEvent& e = events[static_cast<std::size_t>(t)];
    EXPECT_EQ(e.sim_time, t);
    EXPECT_EQ(e.id, 100 + t);
    EXPECT_EQ(e.a, t * 2);
    EXPECT_EQ(e.category, TraceCategory::kScheduler);
    EXPECT_EQ(e.phase, TraceEvent::Phase::kInstant);
  }
}

TEST(TraceBufferTest, WraparoundOverwritesOldest) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::int64_t kTotal = 20;  // 12 past capacity
  TraceBuffer buf(kCapacity);
  for (std::int64_t t = 0; t < kTotal; ++t) {
    buf.emit(t, TraceCategory::kEngine, TracePoint::kJobEnd, /*id=*/t);
  }
  EXPECT_EQ(buf.size(), kCapacity);
  EXPECT_EQ(buf.dropped(), kTotal - kCapacity);
  EXPECT_EQ(buf.emitted(), static_cast<std::uint64_t>(kTotal));
  // The survivors are exactly the newest kCapacity events, still
  // oldest-to-newest: pressure changes which prefix survives, never order.
  std::vector<std::int64_t> ids;
  buf.for_each([&ids](const TraceEvent& e) { ids.push_back(e.id); });
  ASSERT_EQ(ids.size(), kCapacity);
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(ids[i], static_cast<std::int64_t>(kTotal - kCapacity + i));
  }
}

TEST(TraceBufferTest, WraparoundIsExactAtCapacityBoundary) {
  TraceBuffer buf(4);
  for (std::int64_t t = 0; t < 4; ++t) {
    buf.emit(t, TraceCategory::kFault, TracePoint::kOutageBegin);
  }
  EXPECT_EQ(buf.dropped(), 0u);  // exactly full, nothing lost yet
  buf.emit(4, TraceCategory::kFault, TracePoint::kOutageEnd);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 1u);
  EXPECT_EQ(buf.snapshot().front().sim_time, 1);  // event 0 overwritten
  EXPECT_EQ(buf.snapshot().back().sim_time, 4);
}

// --- TraceSpan -------------------------------------------------------------

TEST(TraceSpanTest, EmitsBeginAndEndWithPayloadOnEnd) {
  TraceBuffer buf(16);
  {
    TraceSpan span(&buf, /*sim_time=*/42, TraceCategory::kAnalytics,
                   TracePoint::kClassify, /*id=*/7);
    span.set_payload(/*a=*/350, /*b=*/4);
  }
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& begin = events[0];
  const TraceEvent& end = events[1];
  EXPECT_EQ(begin.phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(end.phase, TraceEvent::Phase::kEnd);
  // Both edges carry the construction-time stamp and the subject id; the
  // payload rides only on the end edge.
  EXPECT_EQ(begin.sim_time, 42);
  EXPECT_EQ(end.sim_time, 42);
  EXPECT_EQ(begin.id, 7);
  EXPECT_EQ(end.id, 7);
  EXPECT_EQ(begin.a, 0);
  EXPECT_EQ(end.a, 350);
  EXPECT_EQ(end.b, 4);
  EXPECT_EQ(begin.point, TracePoint::kClassify);
  EXPECT_EQ(end.point, TracePoint::kClassify);
}

TEST(TraceSpanTest, NestedSpansTrackDepth) {
  TraceBuffer buf(16);
  {
    TraceSpan outer(&buf, 0, TraceCategory::kAnalytics,
                    TracePoint::kScenarioRun);
    EXPECT_EQ(buf.depth(), 1u);
    {
      TraceSpan inner(&buf, 0, TraceCategory::kAnalytics,
                      TracePoint::kFeatureExtract);
      EXPECT_EQ(buf.depth(), 2u);
    }
    EXPECT_EQ(buf.depth(), 1u);
  }
  EXPECT_EQ(buf.depth(), 0u);
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // outer-begin, inner-begin, inner-end, outer-end. Both edges of a span
  // carry the depth *outside* it: a viewer nests by matching B/E pairs.
  EXPECT_EQ(events[0].point, TracePoint::kScenarioRun);
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].point, TracePoint::kFeatureExtract);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].point, TracePoint::kFeatureExtract);
  EXPECT_EQ(events[2].depth, 1u);
  EXPECT_EQ(events[3].point, TracePoint::kScenarioRun);
  EXPECT_EQ(events[3].depth, 0u);
}

TEST(TraceSpanTest, NullBufferIsNoOp) {
  TraceSpan span(nullptr, 0, TraceCategory::kScheduler,
                 TracePoint::kSchedulePass);
  span.set_payload(1, 2);  // must not crash; nothing to assert beyond that
}

}  // namespace
}  // namespace tg::obs
