#include "infra/platform.hpp"

#include <gtest/gtest.h>

#include "infra/community.hpp"
#include "util/error.hpp"

namespace tg {
namespace {

TEST(Platform, AddAndLookupSite) {
  Platform p;
  const SiteId a = p.add_site("A");
  const SiteId b = p.add_site("B");
  EXPECT_EQ(p.site(a).name, "A");
  EXPECT_EQ(p.site(b).name, "B");
  EXPECT_EQ(p.sites().size(), 2u);
  EXPECT_THROW((void)p.site(SiteId{5}), PreconditionError);
  EXPECT_THROW((void)p.site(SiteId{}), PreconditionError);
}

TEST(Platform, AddComputeValidates) {
  Platform p;
  const SiteId s = p.add_site("A");
  ComputeResource r;
  r.site = s;
  r.name = "C";
  r.nodes = 0;
  r.cores_per_node = 8;
  EXPECT_THROW(p.add_compute(r), PreconditionError);
  r.nodes = 4;
  r.site = SiteId{9};
  EXPECT_THROW(p.add_compute(r), PreconditionError);
  r.site = s;
  const ResourceId id = p.add_compute(r);
  EXPECT_TRUE(p.is_compute(id));
  EXPECT_EQ(p.compute_at(id).total_cores(), 32);
}

TEST(Platform, StorageIdsDisjointFromCompute) {
  Platform p;
  const SiteId s = p.add_site("A");
  ComputeResource c;
  c.site = s;
  c.name = "C";
  c.nodes = 1;
  c.cores_per_node = 1;
  const ResourceId cid = p.add_compute(c);
  StorageResource st;
  st.site = s;
  st.name = "S";
  const ResourceId sid = p.add_storage(st);
  EXPECT_TRUE(p.is_compute(cid));
  EXPECT_FALSE(p.is_compute(sid));
  EXPECT_EQ(p.storage_at(sid).name, "S");
  EXPECT_THROW((void)p.storage_at(cid), PreconditionError);
  EXPECT_THROW((void)p.compute_at(sid), PreconditionError);
}

TEST(Platform, LinkValidation) {
  Platform p;
  const SiteId a = p.add_site("A");
  const SiteId b = p.add_site("B");
  EXPECT_THROW(p.add_link(a, a, 10.0), PreconditionError);
  EXPECT_THROW(p.add_link(a, b, 0.0), PreconditionError);
  const LinkId l = p.add_link(a, b, 10.0, 5 * kMillisecond);
  EXPECT_EQ(p.link(l).gbps, 10.0);
}

TEST(Platform, ComputeByName) {
  Platform p = mini_platform();
  EXPECT_EQ(p.compute_by_name("ClusterA").nodes, 16);
  EXPECT_THROW((void)p.compute_by_name("nope"), PreconditionError);
}

TEST(TeraGridPreset, HasExpectedShape) {
  const Platform p = teragrid_2010();
  EXPECT_EQ(p.sites().size(), 11u);
  EXPECT_EQ(p.compute().size(), 13u);
  EXPECT_EQ(p.storage().size(), 4u);
  EXPECT_GE(p.links().size(), 10u);
  // Kraken is the biggest machine.
  const auto& kraken = p.compute_by_name("Kraken");
  for (const auto& r : p.compute()) {
    EXPECT_LE(r.total_cores(), kraken.total_cores());
  }
  // Exactly two viz systems.
  int viz = 0;
  for (const auto& r : p.compute()) viz += r.interactive_viz ? 1 : 0;
  EXPECT_EQ(viz, 2);
  EXPECT_GT(p.total_cores(), 20000);
}

TEST(TeraGridPreset, AllResourcesReachable) {
  const Platform p = teragrid_2010();
  // Every site with a resource connects to the hub (spoke topology) —
  // verified indirectly via the links table.
  for (const auto& r : p.compute()) {
    bool linked = false;
    for (const auto& l : p.links()) {
      if (l.a == r.site || l.b == r.site) linked = true;
    }
    EXPECT_TRUE(linked) << r.name;
  }
}

TEST(Community, ProjectsAndUsers) {
  Community c;
  const ProjectId p1 = c.add_project("P1", FieldOfScience::kPhysics, 1e6);
  const UserId u1 = c.add_user("alice", p1);
  const UserId u2 = c.add_user("bob", p1);
  EXPECT_EQ(c.user_count(), 2u);
  EXPECT_EQ(c.user(u1).name, "alice");
  EXPECT_EQ(c.user(u2).project, p1);
  EXPECT_EQ(c.project(p1).field, FieldOfScience::kPhysics);
  EXPECT_THROW(c.add_user("x", ProjectId{7}), PreconditionError);
  EXPECT_THROW((void)c.project(ProjectId{3}), PreconditionError);
  EXPECT_THROW((void)c.user(UserId{9}), PreconditionError);
  EXPECT_THROW(c.add_project("neg", FieldOfScience::kOther, -1.0),
               PreconditionError);
}

TEST(Community, FieldNames) {
  EXPECT_STREQ(to_string(FieldOfScience::kPhysics), "Physics");
  EXPECT_STREQ(to_string(FieldOfScience::kOther), "Other");
}

}  // namespace
}  // namespace tg
