#include "workload/population.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tg {
namespace {

PopulationConfig small_config() {
  PopulationConfig c;
  c.registry = ArchetypeRegistry::builtin()
                   .set_count("capacity", 20)
                   .set_count("capability", 5)
                   .set_count("gateway", 30)
                   .set_count("workflow", 10)
                   .set_count("coupled", 4)
                   .set_count("viz", 6)
                   .set_count("data", 6)
                   .set_count("exploratory", 9);
  c.gateways = 2;
  return c;
}

TEST(Population, AccountCountsMatchMix) {
  const Platform p = teragrid_2010();
  Rng rng(1);
  const auto cfg = small_config();
  const Population pop = build_population(p, cfg, rng);
  EXPECT_EQ(pop.users.size(),
            static_cast<std::size_t>(cfg.registry.account_users()));
  // Community holds account users + one community account per gateway.
  EXPECT_EQ(pop.community.user_count(),
            pop.users.size() + static_cast<std::size_t>(cfg.gateways));
  EXPECT_EQ(pop.gateway_configs.size(), 2u);
  EXPECT_EQ(pop.gateway_end_users.size(), 30u);
}

TEST(Population, GroundTruthAlignedWithUsers) {
  const Platform p = teragrid_2010();
  Rng rng(2);
  const Population pop = build_population(p, small_config(), rng);
  ASSERT_EQ(pop.truth.primary.size(), pop.community.user_count());
  for (const SyntheticUser& u : pop.users) {
    EXPECT_EQ(pop.truth.of(u.id), u.modality);
  }
  for (const GatewayConfig& gc : pop.gateway_configs) {
    EXPECT_EQ(pop.truth.of(gc.community_account), Modality::kGateway);
  }
}

TEST(Population, ModalityMixCounts) {
  const Platform p = teragrid_2010();
  Rng rng(3);
  const auto cfg = small_config();
  const Population pop = build_population(p, cfg, rng);
  std::array<int, kModalityCount> counts{};
  for (const SyntheticUser& u : pop.users) {
    ++counts[static_cast<std::size_t>(u.modality)];
  }
  EXPECT_EQ(counts[static_cast<std::size_t>(Modality::kCapacityBatch)], 20);
  EXPECT_EQ(counts[static_cast<std::size_t>(Modality::kCapabilityBatch)], 5);
  EXPECT_EQ(counts[static_cast<std::size_t>(Modality::kGateway)], 0);
  EXPECT_EQ(counts[static_cast<std::size_t>(Modality::kWorkflowEnsemble)], 10);
}

TEST(Population, CapabilityUsersPreferLargeMachines) {
  const Platform p = teragrid_2010();
  Rng rng(4);
  const Population pop = build_population(p, small_config(), rng);
  for (const SyntheticUser& u : pop.users) {
    if (u.modality != Modality::kCapabilityBatch) continue;
    for (ResourceId r : u.preferred) {
      EXPECT_GE(p.compute_at(r).nodes, 256) << p.compute_at(r).name;
    }
  }
}

TEST(Population, VizUsersPreferVizSystems) {
  const Platform p = teragrid_2010();
  Rng rng(5);
  const Population pop = build_population(p, small_config(), rng);
  for (const SyntheticUser& u : pop.users) {
    if (u.modality != Modality::kRemoteInteractive) continue;
    for (ResourceId r : u.preferred) {
      EXPECT_TRUE(p.compute_at(r).interactive_viz);
    }
  }
}

TEST(Population, GatewayTargetsAreBatchMachines) {
  const Platform p = teragrid_2010();
  Rng rng(6);
  const Population pop = build_population(p, small_config(), rng);
  for (const GatewayConfig& gc : pop.gateway_configs) {
    EXPECT_FALSE(gc.targets.empty());
    for (ResourceId r : gc.targets) {
      EXPECT_FALSE(p.compute_at(r).interactive_viz);
    }
  }
}

TEST(Population, AdoptionRampSpreadsActivation) {
  const Platform p = teragrid_2010();
  Rng rng(7);
  PopulationConfig cfg = small_config();
  cfg.registry.set_count("gateway", 200);
  cfg.gateway_adoption_ramp = 1.0;
  cfg.horizon = kYear;
  const Population pop = build_population(p, cfg, rng);
  int late = 0;
  for (const auto& eu : pop.gateway_end_users) {
    if (eu.active_from > kYear / 2) ++late;
  }
  // Uniform activation: roughly half activate in the second half-year.
  EXPECT_NEAR(late, 100, 30);
}

TEST(Population, NoRampMeansActiveFromStart) {
  const Platform p = teragrid_2010();
  Rng rng(8);
  PopulationConfig cfg = small_config();
  cfg.gateway_adoption_ramp = 0.0;
  const Population pop = build_population(p, cfg, rng);
  for (const auto& eu : pop.gateway_end_users) {
    EXPECT_EQ(eu.active_from, 0);
  }
}

TEST(Population, DeterministicForSeed) {
  const Platform p = teragrid_2010();
  Rng r1(9);
  Rng r2(9);
  const Population a = build_population(p, small_config(), r1);
  const Population b = build_population(p, small_config(), r2);
  ASSERT_EQ(a.users.size(), b.users.size());
  for (std::size_t i = 0; i < a.users.size(); ++i) {
    EXPECT_EQ(a.users[i].modality, b.users[i].modality);
    EXPECT_EQ(a.users[i].preferred, b.users[i].preferred);
    EXPECT_DOUBLE_EQ(a.users[i].activity_scale, b.users[i].activity_scale);
  }
}

TEST(Population, EndUserLabelsUnique) {
  const Platform p = teragrid_2010();
  Rng rng(10);
  const Population pop = build_population(p, small_config(), rng);
  std::set<std::string> labels;
  for (const auto& eu : pop.gateway_end_users) labels.insert(eu.label);
  EXPECT_EQ(labels.size(), pop.gateway_end_users.size());
}

TEST(Population, WorksOnMiniPlatform) {
  const Platform p = mini_platform();
  Rng rng(11);
  // Constraint relaxation: even viz/capability archetypes get resources.
  const Population pop = build_population(p, small_config(), rng);
  EXPECT_EQ(pop.users.size(),
            static_cast<std::size_t>(small_config().registry.account_users()));
}

}  // namespace
}  // namespace tg
