#include "sched/profile.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

TEST(Profile, EmptyProfileFitsImmediately) {
  Profile p(0, 100);
  EXPECT_EQ(p.earliest_fit(50, kHour, 0), 0);
  EXPECT_EQ(p.earliest_fit(100, kHour, 0), 0);
  EXPECT_EQ(p.free_at(0), 100);
  EXPECT_EQ(p.free_at(kYear), 100);
}

TEST(Profile, TooWideNeverFits) {
  Profile p(0, 100);
  EXPECT_EQ(p.earliest_fit(101, kHour, 0), -1);
}

TEST(Profile, SubtractReducesFree) {
  Profile p(0, 100);
  p.subtract(0, kHour, 60);
  EXPECT_EQ(p.free_at(0), 40);
  EXPECT_EQ(p.free_at(kHour - 1), 40);
  EXPECT_EQ(p.free_at(kHour), 100);
}

TEST(Profile, FitWaitsForRelease) {
  Profile p(0, 100);
  p.subtract(0, kHour, 60);
  EXPECT_EQ(p.earliest_fit(40, kHour, 0), 0);
  EXPECT_EQ(p.earliest_fit(41, kHour, 0), kHour);
}

TEST(Profile, FitSlipsIntoGap) {
  // Busy [0,1h) and [2h,3h); a 1-hour job of full width fits exactly in
  // the gap [1h,2h).
  Profile p(0, 10);
  p.subtract(0, kHour, 10);
  p.subtract(2 * kHour, 3 * kHour, 10);
  EXPECT_EQ(p.earliest_fit(10, kHour, 0), kHour);
  // A longer job must wait past the second block.
  EXPECT_EQ(p.earliest_fit(10, kHour + 1, 0), 3 * kHour);
}

TEST(Profile, EarliestParameterRespected) {
  Profile p(0, 10);
  EXPECT_EQ(p.earliest_fit(5, kHour, 30 * kMinute), 30 * kMinute);
}

TEST(Profile, OverlappingSubtracts) {
  Profile p(0, 10);
  p.subtract(0, 2 * kHour, 4);
  p.subtract(kHour, 3 * kHour, 4);
  EXPECT_EQ(p.free_at(0), 6);
  EXPECT_EQ(p.free_at(kHour), 2);
  EXPECT_EQ(p.free_at(2 * kHour), 6);
  EXPECT_EQ(p.free_at(3 * kHour), 10);
  // 6 nodes free during [0,1h) already fits a 5-node job.
  EXPECT_EQ(p.earliest_fit(5, kHour, 0), 0);
  EXPECT_EQ(p.earliest_fit(6, kHour, 0), 0);
  EXPECT_EQ(p.earliest_fit(7, kHour, 0), 3 * kHour);
}

TEST(Profile, SubtractBeforeNowClamps) {
  Profile p(kHour, 10);
  p.subtract(0, 2 * kHour, 5);  // starts before profile origin
  EXPECT_EQ(p.free_at(kHour), 5);
  EXPECT_EQ(p.free_at(2 * kHour), 10);
}

TEST(Profile, ZeroNodeAndEmptyIntervalNoops) {
  Profile p(0, 10);
  p.subtract(0, kHour, 0);
  p.subtract(kHour, kHour, 5);
  p.subtract(2 * kHour, kHour, 5);  // to < from
  EXPECT_EQ(p.free_at(0), 10);
  EXPECT_EQ(p.free_at(kHour), 10);
}

TEST(Profile, FenceBlocksStraddlingJob) {
  Profile p(0, 10);
  p.add_fence(kHour);
  // A 2-hour job cannot span the fence: it must start at the fence.
  EXPECT_EQ(p.earliest_fit(10, 2 * kHour, 0), kHour);
  // A 1-hour job fits before the fence.
  EXPECT_EQ(p.earliest_fit(10, kHour, 0), 0);
  // A 30-minute job starting at 45min would straddle; from 0 it's fine.
  EXPECT_EQ(p.earliest_fit(10, 30 * kMinute, 45 * kMinute), kHour);
}

TEST(Profile, MultipleFences) {
  Profile p(0, 10);
  p.add_fence(kHour);
  p.add_fence(2 * kHour);
  p.add_fence(2 * kHour);  // duplicate ignored
  EXPECT_EQ(p.earliest_fit(5, 90 * kMinute, 0), 2 * kHour);
  EXPECT_EQ(p.earliest_fit(5, 30 * kMinute, 90 * kMinute), 90 * kMinute);
}

TEST(Profile, FenceBeforeNowIgnored) {
  Profile p(kHour, 10);
  p.add_fence(0);
  EXPECT_EQ(p.earliest_fit(10, kDay, kHour), kHour);
}

TEST(Profile, FenceInteractsWithBusyInterval) {
  Profile p(0, 10);
  p.subtract(0, kHour, 10);  // busy first hour
  p.add_fence(90 * kMinute);
  // 1h job: free at 1h, but would straddle the 1.5h fence -> starts there.
  EXPECT_EQ(p.earliest_fit(10, kHour, 0), 90 * kMinute);
  // 30m job fits right at 1h.
  EXPECT_EQ(p.earliest_fit(10, 30 * kMinute, 0), kHour);
}

TEST(Profile, PeriodicFencesHaveNoHorizon) {
  Profile p(0, 10);
  p.set_fence_period(kDay);
  // Each window between consecutive fences is one day; a straddling start
  // snaps to the next fence no matter how far out it lies.
  EXPECT_EQ(p.earliest_fit(10, kDay, 0), 0);
  EXPECT_EQ(p.earliest_fit(10, kDay, kMinute), kDay);
  p.subtract(0, 400 * kDay + 5 * kHour, 10);  // busy past any old horizon
  // Free at 400d+5h, but only 19h remain before the fence at 401d: a
  // 20-hour job must snap to the fence.
  EXPECT_EQ(p.earliest_fit(10, 19 * kHour, 0), 400 * kDay + 5 * kHour);
  EXPECT_EQ(p.earliest_fit(10, 20 * kHour, 0), 401 * kDay);
}

TEST(Profile, JobLongerThanFencePeriodNeverFits) {
  Profile p(0, 10);
  p.set_fence_period(kDay);
  EXPECT_EQ(p.earliest_fit(1, kDay + 1, 0), -1);
  EXPECT_EQ(p.earliest_fit(1, kDay, 0), 0);  // exactly one window is fine
  EXPECT_THROW(p.set_fence_period(-1), PreconditionError);
}

TEST(Profile, PeriodicAndExplicitFencesCompose) {
  Profile p(0, 10);
  p.set_fence_period(kDay);
  p.add_fence(6 * kHour);
  // The explicit fence splits the first window: a 12-hour job straddles it
  // from 0, fits at 6h (next periodic fence is 1d, 18h away).
  EXPECT_EQ(p.earliest_fit(10, 12 * kHour, 0), 6 * kHour);
  // From 20h it would straddle the periodic fence at 1d; snaps to 1d.
  EXPECT_EQ(p.earliest_fit(10, 12 * kHour, 20 * kHour), kDay);
}

TEST(Profile, FitsAtMatchesEarliestFit) {
  Rng rng(77);
  Profile p(0, 64);
  for (int i = 0; i < 30; ++i) {
    const SimTime from = rng.uniform_int(0, 100 * kHour);
    const Duration len = rng.uniform_int(kMinute, 20 * kHour);
    p.subtract(from, from + len, static_cast<int>(rng.uniform_int(1, 32)));
  }
  p.add_fence(30 * kHour);
  p.set_fence_period(7 * kDay);
  for (int q = 0; q < 200; ++q) {
    const int nodes = static_cast<int>(rng.uniform_int(1, 64));
    const Duration dur = rng.uniform_int(kMinute, 10 * kHour);
    const SimTime t = rng.uniform_int(0, 120 * kHour);
    // fits_at(t) must agree with "earliest_fit from t returns exactly t".
    ASSERT_EQ(p.fits_at(t, nodes, dur), p.earliest_fit(nodes, dur, t) == t)
        << "t=" << t << " nodes=" << nodes << " dur=" << dur;
  }
}

TEST(Profile, RejectsBadQueries) {
  Profile p(0, 10);
  EXPECT_THROW((void)p.earliest_fit(-1, kHour, 0), PreconditionError);
  EXPECT_THROW((void)p.earliest_fit(1, -1, 0), PreconditionError);
  EXPECT_THROW(Profile(0, -5), PreconditionError);
}

// Property: earliest_fit's answer is always actually feasible, and no
// earlier feasible start exists on a sampled grid.
class ProfileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileProperty, FitIsFeasibleAndMinimal) {
  Rng rng(GetParam());
  Profile p(0, 64);
  for (int i = 0; i < 30; ++i) {
    const SimTime from = rng.uniform_int(0, 100 * kHour);
    const Duration len = rng.uniform_int(kMinute, 20 * kHour);
    p.subtract(from, from + len, static_cast<int>(rng.uniform_int(1, 32)));
  }
  for (int i = 0; i < 3; ++i) {
    p.add_fence(rng.uniform_int(0, 120 * kHour));
  }
  const auto feasible = [&](SimTime s, int nodes, Duration dur) {
    if (s < 0) return false;
    for (SimTime t = s; t < s + dur; t += 7 * kMinute) {
      if (p.free_at(t) < nodes) return false;
    }
    if (p.free_at(s + dur - 1) < nodes) return false;
    return true;
  };
  for (int q = 0; q < 50; ++q) {
    const int nodes = static_cast<int>(rng.uniform_int(1, 64));
    const Duration dur = rng.uniform_int(kMinute, 10 * kHour);
    const SimTime s = p.earliest_fit(nodes, dur, 0);
    ASSERT_TRUE(feasible(s, nodes, dur))
        << "infeasible answer s=" << s << " nodes=" << nodes << " dur=" << dur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileProperty,
                         ::testing::Values(11ULL, 22ULL, 33ULL, 44ULL, 55ULL));

}  // namespace
}  // namespace tg
