#include "recon/recon.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

std::vector<ReconNodeSpec> mixed_nodes(int gpp, int recon, double area = 2.0) {
  std::vector<ReconNodeSpec> nodes;
  for (int i = 0; i < gpp; ++i) nodes.push_back({false, 0.0});
  for (int i = 0; i < recon; ++i) nodes.push_back({true, area});
  return nodes;
}

std::vector<ReconConfig> two_configs(Duration reconfig = 10 * kSecond,
                                     double bytes = 1e6) {
  return {{1.0, reconfig, bytes}, {1.0, reconfig, bytes}};
}

ReconTask hw_task(int config, Duration runtime, double speedup) {
  ReconTask t;
  t.config = config;
  t.gpp_runtime = runtime;
  t.speedup = speedup;
  return t;
}

TEST(Recon, PlainTaskRunsOnGpp) {
  Engine e;
  ReconCluster cluster(e, mixed_nodes(1, 1), two_configs());
  cluster.submit(hw_task(-1, kMinute, 1.0));
  e.run();
  EXPECT_EQ(cluster.stats().tasks_done, 1u);
  EXPECT_EQ(cluster.stats().tasks_on_gpp, 1u);
  EXPECT_EQ(cluster.stats().reconfigurations, 0u);
  EXPECT_EQ(e.now(), kMinute);
}

TEST(Recon, HardwareTaskPrefersReconNode) {
  Engine e;
  ReconCluster cluster(e, mixed_nodes(1, 1), two_configs(10 * kSecond, 0.0),
                       1.0);
  cluster.submit(hw_task(0, 10 * kMinute, 10.0));
  e.run();
  EXPECT_EQ(cluster.stats().tasks_on_recon, 1u);
  // 10 s reconfig + 1 min accelerated runtime.
  EXPECT_EQ(e.now(), 10 * kSecond + kMinute);
  EXPECT_EQ(cluster.stats().reconfigurations, 1u);
}

TEST(Recon, ConfigReusedWithoutReconfiguration) {
  Engine e;
  ReconCluster cluster(e, mixed_nodes(0, 1), two_configs());
  cluster.submit(hw_task(0, kMinute, 2.0));
  cluster.submit(hw_task(0, kMinute, 2.0));
  e.run();
  EXPECT_EQ(cluster.stats().reconfigurations, 1u);  // only the first
  EXPECT_EQ(cluster.stats().config_hits, 1u);
  EXPECT_TRUE(cluster.holds_config(0, 0));
}

TEST(Recon, BitstreamTransferAddsLatency) {
  Engine e;
  // 1 Gb/s link, 125 MB bitstream -> 1 s; no reconfig time.
  ReconCluster cluster(e, mixed_nodes(0, 1), {{1.0, 0, 125e6}}, 1.0);
  cluster.submit(hw_task(0, kMinute, 60.0));  // runs in 1 s accelerated
  e.run();
  EXPECT_EQ(e.now(), 2 * kSecond);
  EXPECT_EQ(cluster.stats().total_reconfig_time, kSecond);
}

TEST(Recon, LruEvictionWhenAreaExhausted) {
  Engine e;
  // Node area 1.0; each config takes 1.0 -> loading the second evicts the
  // first.
  ReconCluster cluster(e, mixed_nodes(0, 1, 1.0), two_configs());
  cluster.submit(hw_task(0, kMinute, 2.0));
  cluster.submit(hw_task(1, kMinute, 2.0));
  cluster.submit(hw_task(0, kMinute, 2.0));  // config 0 evicted -> reload
  e.run();
  EXPECT_EQ(cluster.stats().reconfigurations, 3u);
  EXPECT_TRUE(cluster.holds_config(0, 0));
  EXPECT_FALSE(cluster.holds_config(0, 1));
}

TEST(Recon, LargeAreaCachesBothConfigs) {
  Engine e;
  ReconCluster cluster(e, mixed_nodes(0, 1, 2.0), two_configs());
  cluster.submit(hw_task(0, kMinute, 2.0));
  cluster.submit(hw_task(1, kMinute, 2.0));
  cluster.submit(hw_task(0, kMinute, 2.0));
  e.run();
  EXPECT_EQ(cluster.stats().reconfigurations, 2u);
  EXPECT_TRUE(cluster.holds_config(0, 0));
  EXPECT_TRUE(cluster.holds_config(0, 1));
}

TEST(Recon, AffinitySchedulingPicksNodeWithConfig) {
  Engine e;
  // Two recon nodes. Warm node 0 with config 0, node 1 with config 1,
  // then a burst of config-0 tasks must find the warm node.
  ReconCluster cluster(e, mixed_nodes(0, 2, 1.0), two_configs());
  cluster.submit(hw_task(0, kMinute, 2.0));
  cluster.submit(hw_task(1, kMinute, 2.0));
  e.run();
  const auto reconfigs_after_warmup = cluster.stats().reconfigurations;
  cluster.submit(hw_task(0, kMinute, 2.0));
  cluster.submit(hw_task(1, kMinute, 2.0));
  e.run();
  EXPECT_EQ(cluster.stats().reconfigurations, reconfigs_after_warmup);
}

TEST(Recon, QueueDrainsInOrder) {
  Engine e;
  ReconCluster cluster(e, mixed_nodes(1, 0), {});
  for (int i = 0; i < 5; ++i) cluster.submit(hw_task(-1, kMinute, 1.0));
  EXPECT_EQ(cluster.queued(), 4u);
  EXPECT_EQ(cluster.busy_nodes(), 1u);
  e.run();
  EXPECT_EQ(cluster.stats().tasks_done, 5u);
  EXPECT_EQ(e.now(), 5 * kMinute);
  EXPECT_EQ(cluster.queued(), 0u);
  EXPECT_EQ(cluster.busy_nodes(), 0u);
}

TEST(Recon, GppFallbackWhenReconBusy) {
  Engine e;
  ReconCluster cluster(e, mixed_nodes(1, 1), two_configs(0, 0.0));
  // Two accelerable tasks: one takes the recon node, the second falls back
  // to the GPP rather than waiting.
  cluster.submit(hw_task(0, 10 * kMinute, 10.0));
  cluster.submit(hw_task(0, 10 * kMinute, 10.0));
  e.run();
  EXPECT_EQ(cluster.stats().tasks_on_recon, 1u);
  EXPECT_EQ(cluster.stats().tasks_on_gpp, 1u);
  EXPECT_EQ(e.now(), 10 * kMinute);  // GPP task dominates
}

TEST(Recon, Validation) {
  Engine e;
  EXPECT_THROW(ReconCluster(e, {}, {}), PreconditionError);
  EXPECT_THROW(ReconCluster(e, mixed_nodes(1, 0), {}, 0.0),
               PreconditionError);
  ReconCluster cluster(e, mixed_nodes(1, 0), {});
  EXPECT_THROW(cluster.submit(hw_task(5, kMinute, 1.0)), PreconditionError);
  EXPECT_THROW(cluster.submit(hw_task(-1, 0, 1.0)), PreconditionError);
  EXPECT_THROW(cluster.submit(hw_task(-1, kMinute, 0.5)), PreconditionError);
  EXPECT_THROW((void)cluster.holds_config(9, 0), PreconditionError);
}

TEST(Recon, ConfigLargerThanNodeAreaRejected) {
  Engine e;
  ReconCluster cluster(e, mixed_nodes(0, 1, 0.5), {{1.0, 0, 0.0}});
  // Dispatch happens synchronously on submit; the oversized configuration
  // is rejected there.
  EXPECT_THROW(cluster.submit(hw_task(0, kMinute, 2.0)), PreconditionError);
}


TEST(ReconPolicy, FirstFitIgnoresAffinity) {
  // Warm node 0 with config 0 and node 1 with config 1, then submit a
  // config-0 task: first-fit takes node 0 by position, not affinity — so
  // warm node 1 with config 0... instead verify via reconfiguration counts
  // on an alternating stream where affinity wins clearly.
  const auto reconfigs_with = [](ReconPolicy policy) {
    Engine e;
    ReconCluster cluster(e, mixed_nodes(0, 2, 1.0), two_configs(0, 0.0), 1.0,
                         policy);
    for (int i = 0; i < 40; ++i) {
      cluster.submit(hw_task(i % 2, kMinute, 2.0));
      e.run();  // serialize so both nodes are idle at each submit
    }
    return cluster.stats().reconfigurations;
  };
  // Affinity settles into one config per node: 2 reconfigurations total.
  EXPECT_EQ(reconfigs_with(ReconPolicy::kAffinity), 2u);
  // First-fit always grabs node 0, thrashing its single config slot.
  EXPECT_GT(reconfigs_with(ReconPolicy::kFirstFit), 20u);
}

TEST(ReconPolicy, DedicatedKeepsHardwareTasksOffGpps) {
  Engine e;
  ReconCluster cluster(e, mixed_nodes(2, 1), two_configs(0, 0.0), 1.0,
                       ReconPolicy::kDedicated);
  for (int i = 0; i < 6; ++i) cluster.submit(hw_task(0, 10 * kMinute, 10.0));
  e.run();
  EXPECT_EQ(cluster.stats().tasks_on_recon, 6u);
  EXPECT_EQ(cluster.stats().tasks_on_gpp, 0u);
}

TEST(ReconPolicy, DedicatedAvoidsHeadOfLineBlocking) {
  // One recon node busy with a long hw task; a plain task behind a queued
  // hw task must still start on the idle GPP immediately.
  Engine e;
  ReconCluster cluster(e, mixed_nodes(1, 1), two_configs(0, 0.0), 1.0,
                       ReconPolicy::kDedicated);
  cluster.submit(hw_task(0, 100 * kMinute, 8.0));  // occupies recon node
  cluster.submit(hw_task(1, 100 * kMinute, 8.0));  // queued behind it
  cluster.submit(hw_task(-1, kMinute, 1.0));       // plain task
  EXPECT_EQ(cluster.busy_nodes(), 2u);  // recon + GPP both running
  e.run();
  EXPECT_EQ(cluster.stats().tasks_on_gpp, 1u);
}

TEST(ReconPolicy, Names) {
  EXPECT_STREQ(to_string(ReconPolicy::kAffinity), "affinity");
  EXPECT_STREQ(to_string(ReconPolicy::kFirstFit), "first-fit");
  EXPECT_STREQ(to_string(ReconPolicy::kDedicated), "dedicated");
}

// Trend property (the "expected trend" of the simulator literature):
// adding reconfigurable nodes reduces makespan monotonically-ish for an
// accelerable workload.
class ReconScaling : public ::testing::TestWithParam<int> {};

TEST_P(ReconScaling, MoreReconNodesNeverSlower) {
  const auto run_with = [](int recon_nodes) {
    Engine e;
    ReconCluster cluster(e, mixed_nodes(4 - 0, recon_nodes, 2.0),
                         two_configs(kSecond, 0.0));
    Rng rng(7);
    for (int i = 0; i < 40; ++i) {
      cluster.submit(hw_task(static_cast<int>(rng.uniform_int(0, 1)),
                             10 * kMinute, 8.0));
    }
    e.run();
    return e.now();
  };
  const SimTime base = run_with(GetParam());
  const SimTime more = run_with(GetParam() + 2);
  EXPECT_LE(more, base);
}

INSTANTIATE_TEST_SUITE_P(Nodes, ReconScaling, ::testing::Values(0, 2, 4));

}  // namespace
}  // namespace tg
