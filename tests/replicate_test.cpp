// Error-path and determinism coverage for the replication driver: the
// contract is that run(n, fn) behaves exactly like the sequential loop —
// results in index order, the first error (by index, not by arrival)
// rethrown, and every task settled before the throw so no future is
// abandoned and no worker deadlocks.
#include "parallel/replicate.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace tg {
namespace {

TEST(Replicator, ResultsAreInIndexOrderAtEveryJobsLevel) {
  const auto square = [](std::size_t i) { return i * i; };
  Replicator inline_runner(1);
  const auto expected = inline_runner.run(32, square);
  for (const std::size_t jobs : {2u, 4u, 8u}) {
    Replicator pool(jobs);
    EXPECT_EQ(pool.jobs(), jobs);
    EXPECT_EQ(pool.run(32, square), expected) << "jobs=" << jobs;
  }
}

TEST(Replicator, FirstErrorByIndexIsRethrown) {
  // Index 5 throws too, and on a multi-worker pool may well *arrive* first;
  // the contract picks index 2.
  Replicator pool(4);
  const auto fn = [](std::size_t i) -> int {
    if (i == 2 || i == 5) {
      throw std::runtime_error("boom " + std::to_string(i));
    }
    return static_cast<int>(i);
  };
  for (int repeat = 0; repeat < 10; ++repeat) {
    try {
      pool.run(8, fn);
      FAIL() << "expected run() to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 2");
    }
  }
}

TEST(Replicator, AllTasksSettleBeforeTheThrow) {
  // Every future is drained before the rethrow: by the time run() throws,
  // all n tasks have executed (succeeded or failed), so no packaged task
  // outlives the call and no worker is left blocked.
  Replicator pool(4);
  std::atomic<int> settled{0};
  const auto fn = [&settled](std::size_t i) -> int {
    ++settled;
    if (i % 3 == 0) throw std::runtime_error("boom " + std::to_string(i));
    return static_cast<int>(i);
  };
  EXPECT_THROW(pool.run(64, fn), std::runtime_error);
  EXPECT_EQ(settled.load(), 64);
}

TEST(Replicator, InlineRunStopsAtTheFirstThrow) {
  // jobs == 1 runs on the caller's thread with plain-loop semantics: tasks
  // after the throwing index never start.
  Replicator inline_runner(1);
  std::atomic<int> started{0};
  const auto fn = [&started](std::size_t i) -> int {
    ++started;
    if (i == 2) throw std::runtime_error("boom 2");
    return static_cast<int>(i);
  };
  try {
    inline_runner.run(8, fn);
    FAIL() << "expected run() to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");
  }
  EXPECT_EQ(started.load(), 3);
}

TEST(Replicator, EveryTaskThrowingDoesNotDeadlock) {
  Replicator pool(4);
  const auto fn = [](std::size_t i) -> int {
    throw std::runtime_error("boom " + std::to_string(i));
  };
  try {
    pool.run(100, fn);
    FAIL() << "expected run() to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 0");
  }
  // The pool is still serviceable after a fully-failed batch.
  EXPECT_EQ(pool.run(4, [](std::size_t i) { return i + 1; }),
            (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(Replicator, ZeroTasksIsANoOp) {
  Replicator pool(4);
  int calls = 0;
  const auto out = pool.run(0, [&calls](std::size_t) { return ++calls; });
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, DrainsAllTasksBeforeRethrow) {
  ThreadPool pool(4);
  std::atomic<int> settled{0};
  try {
    parallel_for(pool, 50, [&settled](std::size_t i) {
      ++settled;
      if (i == 7) throw std::logic_error("seven");
    });
    FAIL() << "expected parallel_for to throw";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(e.what(), "seven");
  }
  EXPECT_EQ(settled.load(), 50);
}

}  // namespace
}  // namespace tg
