#include "core/report.hpp"

#include <gtest/gtest.h>

#include "util/string_pool.hpp"

namespace tg {
namespace {

class ReportFixture : public ::testing::Test {
 protected:
  Platform platform = mini_platform();
  UsageDatabase db;
  RuleClassifier classifier;
  StringPool labels;

  void add_job(UserId user, int nodes, double nu, SimTime end,
               const std::string& gw_user = "",
               GatewayId gw = GatewayId{}) {
    JobRecord r;
    r.resource = platform.compute()[0].id;
    r.user = user;
    r.nodes = nodes;
    r.cores_per_node = 8;
    r.submit_time = end - kHour;
    r.start_time = end - kHour;
    r.end_time = end;
    r.requested_walltime = kHour;
    r.charged_nu = nu;
    r.charged_su = nu;
    r.gateway = gw;
    if (!gw_user.empty()) r.gateway_end_user = labels.intern(gw_user);
    db.add(r);
  }
};

TEST_F(ReportFixture, CountsUsersJobsAndNu) {
  for (int i = 0; i < 30; ++i) add_job(UserId{1}, 8, 1000.0, (i + 1) * kHour);
  for (int i = 0; i < 3; ++i) add_job(UserId{2}, 1, 10.0, (i + 1) * kHour);
  const auto report =
      ModalityReport::build(platform, db, classifier, 0, kYear);
  EXPECT_EQ(report.total_users(), 2);
  EXPECT_EQ(report.total_jobs(), 33);
  EXPECT_NEAR(report.total_nu(), 30030.0, 1e-9);
  const auto& capacity = report.row(Modality::kCapacityBatch);
  EXPECT_EQ(capacity.primary_users, 1);
  EXPECT_EQ(capacity.jobs, 30);
  const auto& exploratory = report.row(Modality::kExploratory);
  EXPECT_EQ(exploratory.primary_users, 1);
  EXPECT_NEAR(capacity.nu_share + exploratory.nu_share, 1.0, 1e-9);
  EXPECT_NEAR(capacity.user_share, 0.5, 1e-9);
}

TEST_F(ReportFixture, GatewayEndUserCounting) {
  add_job(UserId{9}, 1, 1.0, kHour, "hub:alice", GatewayId{0});
  add_job(UserId{9}, 1, 1.0, 2 * kHour, "hub:bob", GatewayId{0});
  add_job(UserId{9}, 1, 1.0, 3 * kHour, "hub:alice", GatewayId{0});
  add_job(UserId{9}, 1, 1.0, 4 * kHour, "", GatewayId{0});  // coverage gap
  EXPECT_EQ(count_gateway_end_users(db, 0, kYear), 2);
  EXPECT_EQ(count_gateway_end_users(db, 0, 90 * kMinute), 1);
  const auto report =
      ModalityReport::build(platform, db, classifier, 0, kYear);
  EXPECT_EQ(report.gateway_end_users(), 2);
  EXPECT_EQ(report.row(Modality::kGateway).primary_users, 1);
}

TEST_F(ReportFixture, EmptyDatabase) {
  const auto report =
      ModalityReport::build(platform, db, classifier, 0, kYear);
  EXPECT_EQ(report.total_users(), 0);
  EXPECT_EQ(report.total_jobs(), 0);
  EXPECT_FALSE(report.to_table().to_string().empty());
}

TEST_F(ReportFixture, SharesSumToOne) {
  for (int u = 0; u < 10; ++u) {
    for (int j = 0; j < 5 + u; ++j) {
      add_job(UserId{u}, 1 + u, 100.0 * (u + 1), (j + 1) * kHour);
    }
  }
  const auto report =
      ModalityReport::build(platform, db, classifier, 0, kYear);
  double user_share = 0.0;
  double nu_share = 0.0;
  for (const auto& row : report.rows()) {
    user_share += row.user_share;
    nu_share += row.nu_share;
  }
  EXPECT_NEAR(user_share, 1.0, 1e-9);
  EXPECT_NEAR(nu_share, 1.0, 1e-9);
}

TEST_F(ReportFixture, QuarterlySeriesBuckets) {
  // User 1 active in Q1 only; user 2 active in Q1 and Q2.
  add_job(UserId{1}, 8, 1000.0, 10 * kDay);
  add_job(UserId{2}, 8, 1000.0, 20 * kDay);
  add_job(UserId{2}, 8, 1000.0, 100 * kDay);
  const auto series =
      quarterly_series(platform, db, classifier, 0, 2 * kQuarter);
  ASSERT_EQ(series.primary_users.size(), 2u);
  int q1 = 0;
  int q2 = 0;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    q1 += series.primary_users[0][m];
    q2 += series.primary_users[1][m];
  }
  EXPECT_EQ(q1, 2);
  EXPECT_EQ(q2, 1);
}

TEST_F(ReportFixture, QuarterlyGatewayGrowth) {
  add_job(UserId{9}, 1, 1.0, 10 * kDay, "hub:a", GatewayId{0});
  add_job(UserId{9}, 1, 1.0, 100 * kDay, "hub:a", GatewayId{0});
  add_job(UserId{9}, 1, 1.0, 101 * kDay, "hub:b", GatewayId{0});
  const auto series =
      quarterly_series(platform, db, classifier, 0, 2 * kQuarter);
  ASSERT_EQ(series.gateway_end_users.size(), 2u);
  EXPECT_EQ(series.gateway_end_users[0], 1);
  EXPECT_EQ(series.gateway_end_users[1], 2);
}

}  // namespace
}  // namespace tg
