#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include <set>
#include <vector>

namespace tg {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanCloseToHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all 5 outcomes hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(19);
  EXPECT_THROW(rng.uniform_int(5, 4), PreconditionError);
}

TEST(Rng, UniformIntApproximatelyUniform) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kN / 10, kN / 100);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministic) {
  const Rng parent(99);
  Rng c1 = parent.fork(5);
  Rng c2 = parent.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, ForkStreamsIndependent) {
  const Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next() == c2.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkByLabelMatchesSameLabel) {
  const Rng parent(7);
  Rng a = parent.fork("sched");
  Rng b = parent.fork("sched");
  Rng c = parent.fork("net");
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng p1(55);
  Rng p2(55);
  (void)p1.fork(17);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p1.next(), p2.next());
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, FirstOutputsDistinctFromShiftedSeed) {
  Rng a(GetParam());
  Rng b(GetParam() + 1);
  EXPECT_NE(a.next(), b.next());
}

TEST_P(RngSeedSweep, UniformStaysInRangeAcrossSeeds) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           ~0ULL));

}  // namespace
}  // namespace tg
