// Integration tests: full simulate -> account -> classify round trips.
#include "workload/scenario.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/scoring.hpp"
#include "util/error.hpp"

namespace tg {
namespace {

ScenarioConfig small_config(std::uint64_t seed = 42) {
  ScenarioConfig c;
  c.seed = seed;
  c.horizon = 30 * kDay;
  c.registry = ArchetypeRegistry::builtin()
                   .set_count("capacity", 25)
                   .set_count("capability", 4)
                   .set_count("gateway", 20)
                   .set_count("workflow", 8)
                   .set_count("coupled", 3)
                   .set_count("viz", 5)
                   .set_count("data", 5)
                   .set_count("exploratory", 10);
  c.gateways = 2;
  return c;
}

TEST(Scenario, ProducesAllRecordKinds) {
  Scenario s(small_config());
  s.run();
  EXPECT_GT(s.db().jobs().size(), 500u);
  EXPECT_GT(s.db().transfers().size(), 10u);
  EXPECT_GT(s.db().sessions().size(), 5u);
  EXPECT_GT(s.db().total_nu(), 0.0);
}

TEST(Scenario, RunTwiceRejected) {
  Scenario s(small_config());
  s.run();
  EXPECT_THROW(s.run(), PreconditionError);
}

TEST(Scenario, DeterministicAcrossRuns) {
  Scenario a(small_config(7));
  a.run();
  Scenario b(small_config(7));
  b.run();
  ASSERT_EQ(a.db().jobs().size(), b.db().jobs().size());
  EXPECT_DOUBLE_EQ(a.db().total_nu(), b.db().total_nu());
  for (std::size_t i = 0; i < a.db().jobs().size(); ++i) {
    EXPECT_EQ(a.db().jobs()[i].user, b.db().jobs()[i].user);
    EXPECT_EQ(a.db().jobs()[i].end_time, b.db().jobs()[i].end_time);
  }
}

TEST(Scenario, SeedsDiverge) {
  Scenario a(small_config(1));
  a.run();
  Scenario b(small_config(2));
  b.run();
  EXPECT_NE(a.db().jobs().size(), b.db().jobs().size());
}

TEST(Scenario, LedgerMatchesDatabase) {
  Scenario s(small_config());
  s.run();
  EXPECT_NEAR(s.ledger().total_charged(), s.db().total_nu(),
              1e-6 * s.db().total_nu());
}

TEST(Scenario, EveryModalityRepresentedInTruthAndRecords) {
  Scenario s(small_config());
  s.run();
  const RuleClassifier classifier;
  const auto report = s.report(classifier);
  // At 30 days, each archetype group should have produced activity.
  EXPECT_GT(report.row(Modality::kCapacityBatch).primary_users, 0);
  EXPECT_GT(report.row(Modality::kGateway).primary_users, 0);
  EXPECT_GT(report.row(Modality::kWorkflowEnsemble).primary_users, 0);
  EXPECT_GT(report.row(Modality::kRemoteInteractive).primary_users, 0);
  EXPECT_GT(report.row(Modality::kExploratory).primary_users, 0);
  EXPECT_GT(report.gateway_end_users(), 0);
}

TEST(Scenario, ClassifierAccuracyHigh) {
  Scenario s(small_config());
  s.run();
  const RuleClassifier classifier;
  const auto labelled = s.predictions(classifier);
  ASSERT_GT(labelled.truth.size(), 40u);
  const auto cm = score_primary(labelled.truth, labelled.predicted);
  EXPECT_GT(cm.accuracy(), 0.75);
}

TEST(Scenario, GatewayJobsChargedToCommunityAccounts) {
  Scenario s(small_config());
  s.run();
  std::set<UserId> community;
  for (const auto& gc : s.population().gateway_configs) {
    community.insert(gc.community_account);
  }
  int gateway_jobs = 0;
  for (const auto& r : s.db().jobs()) {
    if (r.gateway.valid()) {
      ++gateway_jobs;
      EXPECT_TRUE(community.count(r.user)) << "gateway job on user account";
    } else {
      EXPECT_FALSE(community.count(r.user)) << "direct job on community acct";
    }
  }
  EXPECT_GT(gateway_jobs, 50);
}

TEST(Scenario, RecordsRespectHorizonSubmissionGuard) {
  const auto cfg = small_config();
  Scenario s(cfg);
  s.run();
  for (const auto& r : s.db().jobs()) {
    EXPECT_LT(r.submit_time, cfg.horizon);
    EXPECT_GE(r.end_time, r.start_time);
    EXPECT_GE(r.start_time, r.submit_time);
  }
}

TEST(Scenario, CoallocatedJobsComeInSimultaneousGroups) {
  ScenarioConfig cfg = small_config();
  cfg.registry.set_count("coupled", 8);
  Scenario s(std::move(cfg));
  s.run();
  std::map<SimTime, int> starts;
  for (const auto& r : s.db().jobs()) {
    if (r.coallocated) ++starts[r.start_time];
  }
  ASSERT_FALSE(starts.empty());
  // Co-allocations come in simultaneous pairs (2 sites per campaign).
  int paired = 0;
  int total = 0;
  for (const auto& [t, n] : starts) {
    total += n;
    if (n >= 2) paired += n;
  }
  EXPECT_GT(static_cast<double>(paired) / total, 0.9);
}

TEST(Scenario, MiniPlatformSmoke) {
  ScenarioConfig cfg = small_config();
  cfg.mini_platform = true;
  // nothing big enough to be "capability"
  cfg.registry.set_count("capability", 0);
  cfg.registry.set_count("coupled", 2);
  Scenario s(std::move(cfg));
  s.run();
  EXPECT_GT(s.db().jobs().size(), 100u);
}

TEST(Scenario, DisabledFlowsStillRuns) {
  ScenarioConfig cfg = small_config();
  cfg.enable_flows = false;
  Scenario s(std::move(cfg));
  s.run();
  EXPECT_TRUE(s.db().transfers().empty());
  EXPECT_GT(s.db().jobs().size(), 100u);
}

TEST(Scenario, AttributeCoverageControlsEndUserVisibility) {
  ScenarioConfig full = small_config();
  full.gateway_attribute_coverage = 1.0;
  Scenario a(std::move(full));
  a.run();
  ScenarioConfig none = small_config();
  none.gateway_attribute_coverage = 0.0;
  Scenario b(std::move(none));
  b.run();
  const RuleClassifier classifier;
  EXPECT_GT(a.report(classifier).gateway_end_users(), 0);
  EXPECT_EQ(b.report(classifier).gateway_end_users(), 0);
}

}  // namespace
}  // namespace tg
