// Randomized stress tests for the scheduler: mixed submissions,
// cancellations, reservations (some with attached jobs), failure/kill
// injection and drain fences, across all policies. Invariants checked:
// node accounting never overcommits, every job reaches a terminal state,
// the machine returns to fully-free, and runs are deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

struct StressParams {
  SchedPolicy policy;
  Duration drain_period;
  std::uint64_t seed;
};

class SchedulerStress : public ::testing::TestWithParam<StressParams> {};

TEST_P(SchedulerStress, InvariantsHoldUnderChurn) {
  const StressParams params = GetParam();
  ComputeResource res;
  res.id = ResourceId{0};
  res.site = SiteId{0};
  res.name = "stress";
  res.nodes = 64;
  res.cores_per_node = 8;
  res.max_walltime = 24 * kHour;

  Engine engine;
  SchedulerConfig cfg;
  cfg.policy = params.policy;
  cfg.drain_period = params.drain_period;
  ResourceScheduler sched(engine, res, cfg);

  // Track node usage from the observer's viewpoint.
  int nodes_in_use = 0;
  int max_in_use = 0;
  std::map<JobId, int> running_width;
  int started = 0;
  int ended = 0;
  sched.add_on_start([&](const Job& j) {
    ++started;
    nodes_in_use += j.req.nodes;
    max_in_use = std::max(max_in_use, nodes_in_use);
    ASSERT_LE(nodes_in_use, res.nodes) << "observer sees overcommit";
    running_width[j.id] = j.req.nodes;
    ASSERT_GE(j.start_time, j.submit_time);
  });
  sched.add_on_end([&](const Job& j) {
    ++ended;
    const auto it = running_width.find(j.id);
    if (it != running_width.end()) {  // ran (not cancelled while queued)
      nodes_in_use -= it->second;
      running_width.erase(it);
      ASSERT_GE(nodes_in_use, 0);
      ASSERT_GT(j.end_time, j.start_time);
    } else {
      ASSERT_EQ(j.state, JobState::kCancelled);
    }
  });

  Rng rng(params.seed);
  int submitted = 0;
  std::vector<JobId> cancellable;

  // 400 random actions over 20 days.
  for (int i = 0; i < 400; ++i) {
    const SimTime at = rng.uniform_int(0, 20 * kDay);
    const double dice = rng.uniform();
    if (dice < 0.75) {
      // Plain submission, sometimes failing / killed.
      JobRequest req;
      req.user = UserId{0};
      req.project = ProjectId{0};
      req.nodes = static_cast<int>(rng.uniform_int(1, 64));
      req.actual_runtime = rng.uniform_int(kMinute, 20 * kHour);
      req.requested_walltime = std::min<Duration>(
          res.max_walltime,
          std::max<Duration>(
              10 * kMinute,
              static_cast<Duration>(static_cast<double>(req.actual_runtime) *
                                    rng.uniform(0.6, 2.5))));
      if (rng.bernoulli(0.1)) {
        req.fails = true;
        req.fail_after = req.actual_runtime / 3;
      }
      ++submitted;
      engine.schedule_at(at, [&sched, &cancellable, req] {
        cancellable.push_back(sched.submit(req));
      });
    } else if (dice < 0.88) {
      // Reservation, possibly with an attached job.
      const bool attach = rng.bernoulli(0.5);
      const int nodes = static_cast<int>(rng.uniform_int(1, 32));
      const Duration dur = rng.uniform_int(kHour, 12 * kHour);
      const Duration lead = rng.uniform_int(0, 2 * kDay);
      const Duration attach_runtime = rng.uniform_int(kMinute, dur);
      const bool count_attached = attach;
      if (count_attached) ++submitted;
      engine.schedule_at(at, [&, nodes, dur, lead, attach, attach_runtime] {
        const ReservationId r =
            sched.reserve(engine.now() + lead, dur, nodes);
        if (!r.valid()) {
          if (attach) --submitted;  // never materialized
          return;
        }
        if (attach) {
          JobRequest req;
          req.user = UserId{1};
          req.project = ProjectId{0};
          req.nodes = nodes;
          req.actual_runtime = attach_runtime;
          req.requested_walltime = dur;
          sched.attach_to_reservation(r, std::move(req));
        }
      });
    } else {
      // Cancel a random queued job (may be running already: no-op).
      engine.schedule_at(at, [&sched, &cancellable, &rng] {
        if (cancellable.empty()) return;
        const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(cancellable.size()) - 1));
        sched.cancel(cancellable[pick]);
      });
    }
  }
  engine.run();

  // Terminal state: machine fully free, nothing queued or running, and
  // every materialized job reached a terminal callback.
  EXPECT_EQ(sched.free_nodes(), res.nodes);
  EXPECT_EQ(sched.queue_length(), 0u);
  EXPECT_EQ(sched.running_jobs(), 0u);
  EXPECT_EQ(nodes_in_use, 0);
  EXPECT_EQ(ended, submitted);
  EXPECT_GT(max_in_use, 0);
}

TEST_P(SchedulerStress, DeterministicAcrossRuns) {
  const StressParams params = GetParam();
  const auto run_once = [&]() -> std::pair<std::uint64_t, double> {
    ComputeResource res;
    res.id = ResourceId{0};
    res.site = SiteId{0};
    res.name = "det";
    res.nodes = 32;
    res.cores_per_node = 8;
    Engine engine;
    SchedulerConfig cfg;
    cfg.policy = params.policy;
    cfg.drain_period = params.drain_period;
    ResourceScheduler sched(engine, res, cfg);
    Rng rng(params.seed);
    double wait_sum = 0.0;
    sched.add_on_end(
        [&](const Job& j) { wait_sum += to_seconds(j.wait()); });
    for (int i = 0; i < 150; ++i) {
      JobRequest req;
      req.user = UserId{0};
      req.project = ProjectId{0};
      req.nodes = static_cast<int>(rng.uniform_int(1, 32));
      req.actual_runtime = rng.uniform_int(kMinute, 10 * kHour);
      req.requested_walltime = req.actual_runtime;
      engine.schedule_at(rng.uniform_int(0, 5 * kDay),
                         [&sched, req] { sched.submit(req); });
    }
    engine.run();
    return {engine.events_processed(), wait_sum};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, SchedulerStress,
    ::testing::Values(StressParams{SchedPolicy::kFcfs, 0, 1},
                      StressParams{SchedPolicy::kEasyBackfill, 0, 2},
                      StressParams{SchedPolicy::kConservativeBackfill, 0, 3},
                      StressParams{SchedPolicy::kEasyBackfill, 3 * kDay, 4},
                      StressParams{SchedPolicy::kEasyBackfill, 0, 5},
                      StressParams{SchedPolicy::kConservativeBackfill,
                                   2 * kDay, 6}));

// --- Plan-cache equivalence: the incremental planner must be outcome-
// identical to the from-scratch reference planner. Same randomized churn
// (submissions, cancels, outages with requeues, advisor probes) run twice —
// plan_cache on and off — and the full lifecycle + estimate log compared
// entry by entry.

struct EquivParams {
  SchedPolicy policy;
  Duration drain_period;
  Duration plan_horizon;
  bool faulty;
  std::uint64_t seed;
};

class PlanCacheEquivalence : public ::testing::TestWithParam<EquivParams> {};

TEST_P(PlanCacheEquivalence, MatchesReferencePlannerExactly) {
  const EquivParams params = GetParam();
  // (tag, id/nodes, state/start, end/estimate) — one entry per job start,
  // job end, and advisor probe, in simulation order.
  using Record = std::tuple<int, std::int64_t, std::int64_t, std::int64_t>;

  const auto run_once = [&](bool cache) -> std::vector<Record> {
    ComputeResource res;
    res.id = ResourceId{0};
    res.site = SiteId{0};
    res.name = "equiv";
    res.nodes = 64;
    res.cores_per_node = 8;
    res.max_walltime = 24 * kHour;

    Engine engine;
    SchedulerConfig cfg;
    cfg.policy = params.policy;
    cfg.drain_period = params.drain_period;
    cfg.plan_horizon = params.plan_horizon;
    cfg.plan_cache = cache;
    ResourceScheduler sched(engine, res, cfg);

    std::vector<Record> log;
    sched.add_on_start([&](const Job& j) {
      log.emplace_back(0, j.id.value(), j.start_time, 0);
    });
    sched.add_on_end([&](const Job& j) {
      log.emplace_back(1, j.id.value(), static_cast<std::int64_t>(j.state),
                       j.end_time);
    });

    // All randomness is drawn here, before the run: the two runs see
    // byte-identical action schedules regardless of how their internal
    // replan events interleave.
    Rng rng(params.seed);
    std::vector<JobId> cancellable;
    const Duration wall_cap = params.drain_period > 0
                                  ? std::min(params.drain_period,
                                             res.max_walltime)
                                  : res.max_walltime;
    for (int i = 0; i < 300; ++i) {
      const SimTime at = rng.uniform_int(0, 15 * kDay);
      const double dice = rng.uniform();
      if (dice < 0.60 || (dice >= 0.85 && !params.faulty)) {
        JobRequest req;
        req.user = UserId{0};
        req.project = ProjectId{0};
        req.nodes = static_cast<int>(rng.uniform_int(1, 64));
        req.actual_runtime = rng.uniform_int(kMinute, 20 * kHour);
        req.requested_walltime = std::min<Duration>(
            wall_cap,
            std::max<Duration>(
                10 * kMinute,
                static_cast<Duration>(static_cast<double>(req.actual_runtime) *
                                      rng.uniform(0.6, 2.5))));
        req.actual_runtime = std::min(req.actual_runtime,
                                      req.requested_walltime);
        // Mix in exact-walltime jobs: the completions that keep the cached
        // plan alive, the hot path the cache exists for.
        if (rng.bernoulli(0.3)) req.actual_runtime = req.requested_walltime;
        engine.schedule_at(at, [&sched, &cancellable, req] {
          cancellable.push_back(sched.submit(req));
        });
      } else if (dice < 0.70) {
        const std::uint64_t pick = rng.uniform_int(0, 1 << 20);
        engine.schedule_at(at, [&sched, &cancellable, pick] {
          if (cancellable.empty()) return;
          sched.cancel(cancellable[pick % cancellable.size()]);
        });
      } else if (dice < 0.85) {
        const int nodes = static_cast<int>(rng.uniform_int(1, 64));
        const Duration wall = rng.uniform_int(10 * kMinute, wall_cap);
        engine.schedule_at(at, [&sched, &log, nodes, wall] {
          log.emplace_back(2, nodes, wall,
                           sched.estimate_start(nodes, wall));
        });
      } else {
        const int nodes = static_cast<int>(rng.uniform_int(1, 48));
        const Duration down = rng.uniform_int(kHour, 12 * kHour);
        engine.schedule_at(at, [&sched, &engine, nodes, down] {
          const int taken = sched.begin_outage(nodes, engine.now() + down);
          if (taken > 0) {
            engine.schedule_in(down,
                               [&sched, taken] { sched.end_outage(taken); });
          }
        });
      }
    }
    engine.run();
    EXPECT_EQ(sched.queue_length(), 0u);
    EXPECT_EQ(sched.running_jobs(), 0u);
    return log;
  };

  const std::vector<Record> incremental = run_once(true);
  const std::vector<Record> reference = run_once(false);
  ASSERT_EQ(incremental.size(), reference.size());
  for (std::size_t i = 0; i < incremental.size(); ++i) {
    ASSERT_EQ(incremental[i], reference[i]) << "first divergence at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, PlanCacheEquivalence,
    ::testing::Values(
        EquivParams{SchedPolicy::kConservativeBackfill, 0, 0, false, 10},
        EquivParams{SchedPolicy::kConservativeBackfill, 0, 0, true, 11},
        EquivParams{SchedPolicy::kEasyBackfill, 0, 0, true, 12},
        EquivParams{SchedPolicy::kFcfs, 0, 0, true, 13},
        EquivParams{SchedPolicy::kConservativeBackfill, 0, 12 * kHour, true,
                    14},
        EquivParams{SchedPolicy::kEasyBackfill, 2 * kDay, 0, true, 15}));

}  // namespace
}  // namespace tg
