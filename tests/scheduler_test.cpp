#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "infra/platform.hpp"
#include "sched/pool.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

ComputeResource test_resource(int nodes = 16, int cores = 8) {
  ComputeResource r;
  r.id = ResourceId{0};
  r.site = SiteId{0};
  r.name = "test";
  r.nodes = nodes;
  r.cores_per_node = cores;
  r.max_walltime = 48 * kHour;
  return r;
}

JobRequest simple_job(int nodes, Duration actual, Duration requested = 0) {
  JobRequest req;
  req.user = UserId{1};
  req.project = ProjectId{1};
  req.nodes = nodes;
  req.actual_runtime = actual;
  req.requested_walltime = requested > 0 ? requested : actual;
  return req;
}

struct Harness {
  Engine engine;
  ComputeResource res;
  ResourceScheduler sched;
  std::vector<Job> finished;
  std::vector<Job> started;

  explicit Harness(SchedulerConfig cfg = {}, int nodes = 16)
      : res(test_resource(nodes)), sched(engine, res, cfg) {
    sched.add_on_end([this](const Job& j) { finished.push_back(j); });
    sched.add_on_start([this](const Job& j) { started.push_back(j); });
  }
};

TEST(Scheduler, SingleJobRunsImmediately) {
  Harness h;
  const JobId id = h.sched.submit(simple_job(4, kHour));
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].id, id);
  EXPECT_EQ(h.finished[0].start_time, 0);
  EXPECT_EQ(h.finished[0].end_time, kHour);
  EXPECT_EQ(h.finished[0].state, JobState::kCompleted);
  EXPECT_EQ(h.sched.free_nodes(), 16);
}

TEST(Scheduler, ValidatesRequests) {
  Harness h;
  EXPECT_THROW(h.sched.submit(simple_job(0, kHour)), PreconditionError);
  EXPECT_THROW(h.sched.submit(simple_job(17, kHour)), PreconditionError);
  EXPECT_THROW(h.sched.submit(simple_job(4, kHour, 100 * kHour)),
               PreconditionError);
  EXPECT_THROW(h.sched.submit(simple_job(4, 0)), PreconditionError);
}

TEST(Scheduler, JobsQueueWhenFull) {
  Harness h;
  h.sched.submit(simple_job(16, kHour));
  h.sched.submit(simple_job(16, kHour));
  EXPECT_EQ(h.sched.running_jobs(), 1u);
  EXPECT_EQ(h.sched.queue_length(), 1u);
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.finished[1].start_time, kHour);
  EXPECT_EQ(h.finished[1].wait(), kHour);
}

TEST(Scheduler, KilledAtRequestedWalltime) {
  Harness h;
  // Actual 3h but requested only 2h -> killed at 2h.
  h.sched.submit(simple_job(4, 3 * kHour, 2 * kHour));
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].state, JobState::kKilled);
  EXPECT_EQ(h.finished[0].end_time, 2 * kHour);
}

TEST(Scheduler, FailureInjection) {
  Harness h;
  JobRequest req = simple_job(4, 2 * kHour, 3 * kHour);
  req.fails = true;
  req.fail_after = 30 * kMinute;
  h.sched.submit(std::move(req));
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].state, JobState::kFailed);
  EXPECT_EQ(h.finished[0].end_time, 30 * kMinute);
}

TEST(Scheduler, CancelQueuedJob) {
  Harness h;
  h.sched.submit(simple_job(16, kHour));
  const JobId queued = h.sched.submit(simple_job(16, kHour));
  EXPECT_TRUE(h.sched.cancel(queued));
  EXPECT_FALSE(h.sched.cancel(queued));  // gone
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 2u);  // cancel also reports via on_end
  EXPECT_EQ(h.finished[0].state, JobState::kCancelled);
  EXPECT_EQ(h.finished[1].state, JobState::kCompleted);
}

TEST(Scheduler, CancelHeavyQueueStaysConsistent) {
  // Cancel storms leave tombstones in the FIFO queue; queue_length must
  // track live jobs only, survivors must start in arrival order, and the
  // batched compaction must not drop or duplicate anyone.
  Harness h;
  h.sched.submit(simple_job(16, kHour));  // occupies the whole machine
  std::vector<JobId> queued;
  constexpr int kJobs = 2000;
  for (int i = 0; i < kJobs; ++i) {
    queued.push_back(h.sched.submit(simple_job(16, kMinute)));
  }
  EXPECT_EQ(h.sched.queue_length(), static_cast<std::size_t>(kJobs));
  // Cancel every job except each 100th, interleaving front/back halves so
  // tombstones land on both ends of the deque.
  std::size_t cancelled = 0;
  for (int i = 0; i < kJobs / 2; ++i) {
    for (const int j : {i, kJobs - 1 - i}) {
      if (j % 100 == 0) continue;
      ASSERT_TRUE(h.sched.cancel(queued[j]));
      ++cancelled;
    }
  }
  const std::size_t survivors = kJobs - cancelled;
  EXPECT_EQ(h.sched.queue_length(), survivors);
  h.engine.run();
  EXPECT_EQ(h.sched.queue_length(), 0u);
  // on_end saw every job exactly once: cancellations plus blocker plus
  // survivors, and the survivors completed in submission order.
  ASSERT_EQ(h.finished.size(), 1 + cancelled + survivors);
  std::vector<JobId> completed_order;
  for (const Job& j : h.finished) {
    if (j.state == JobState::kCompleted && j.req.nodes == 16 &&
        j.req.actual_runtime == kMinute) {
      completed_order.push_back(j.id);
    }
  }
  std::vector<JobId> expected;
  for (int j = 0; j < kJobs; j += 100) expected.push_back(queued[j]);
  EXPECT_EQ(completed_order, expected);
}

TEST(Scheduler, CancelReservationAttachedJobDetaches) {
  // A queued job attached to a reservation waits on its window, not in the
  // FIFO queue; cancelling it must detach cleanly so the reservation later
  // opens (and ends) empty instead of dereferencing a dead job.
  Harness h;
  const ReservationId r = h.sched.reserve(2 * kHour, kHour, 8);
  ASSERT_TRUE(r.valid());
  const JobId attached = h.sched.attach_to_reservation(r, simple_job(8, kHour));
  EXPECT_EQ(h.sched.queue_length(), 0u);
  EXPECT_TRUE(h.sched.cancel(attached));
  EXPECT_FALSE(h.sched.cancel(attached));
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].state, JobState::kCancelled);
  EXPECT_EQ(h.sched.free_nodes(), 16);
}

TEST(Scheduler, CannotCancelRunningJob) {
  Harness h;
  const JobId id = h.sched.submit(simple_job(4, kHour));
  EXPECT_FALSE(h.sched.cancel(id));
  h.engine.run();
  EXPECT_EQ(h.finished[0].state, JobState::kCompleted);
}

TEST(Scheduler, EarlyCompletionTriggersNextStart) {
  Harness h;
  // Requested 10h but actually finishes in 1h; the queued job must start
  // at 1h, not at the planned 10h.
  h.sched.submit(simple_job(16, kHour, 10 * kHour));
  h.sched.submit(simple_job(16, kHour, kHour));
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.finished[1].start_time, kHour);
}

TEST(Scheduler, FcfsDoesNotBackfill) {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kFcfs;
  Harness h(cfg);
  // Job A holds 12 nodes for 2h. Head job B wants 16 nodes (blocked).
  // Small job C (2 nodes, 30min) could run now, but FCFS must hold it.
  h.sched.submit(simple_job(12, 2 * kHour));
  h.sched.submit(simple_job(16, kHour));
  h.sched.submit(simple_job(2, 30 * kMinute));
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 3u);
  std::map<int, SimTime> start_by_width;
  for (const Job& j : h.finished) start_by_width[j.req.nodes] = j.start_time;
  EXPECT_EQ(start_by_width[12], 0);
  EXPECT_EQ(start_by_width[16], 2 * kHour);
  EXPECT_EQ(start_by_width[2], 3 * kHour);  // waited behind B
}

TEST(Scheduler, EasyBackfillsWithoutDelayingHead) {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kEasyBackfill;
  Harness h(cfg);
  h.sched.submit(simple_job(12, 2 * kHour));   // A
  h.sched.submit(simple_job(16, kHour));        // B (head, blocked)
  h.sched.submit(simple_job(2, 30 * kMinute));  // C fits in the hole
  h.engine.run();
  std::map<int, SimTime> start_by_width;
  for (const Job& j : h.finished) start_by_width[j.req.nodes] = j.start_time;
  EXPECT_EQ(start_by_width[2], 0);           // backfilled immediately
  EXPECT_EQ(start_by_width[16], 2 * kHour);  // head undisturbed
}

TEST(Scheduler, EasyRefusesBackfillThatWouldDelayHead) {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kEasyBackfill;
  Harness h(cfg);
  h.sched.submit(simple_job(12, 2 * kHour));  // A until 2h
  h.sched.submit(simple_job(16, kHour));      // B head, shadow at 2h
  // C: 4 nodes free now, but 3h runtime would push past the shadow while
  // using nodes the head needs -> must NOT start now.
  h.sched.submit(simple_job(4, 3 * kHour));
  h.engine.run();
  std::map<int, SimTime> start_by_width;
  for (const Job& j : h.finished) start_by_width[j.req.nodes] = j.start_time;
  EXPECT_EQ(start_by_width[16], 2 * kHour);
  EXPECT_EQ(start_by_width[4], 3 * kHour);  // after the head
}

TEST(Scheduler, ConservativePreservesOrderGuarantees) {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kConservativeBackfill;
  Harness h(cfg);
  h.sched.submit(simple_job(12, 2 * kHour));   // A
  h.sched.submit(simple_job(16, kHour));        // B planned at 2h
  h.sched.submit(simple_job(4, kHour));         // C: fits now beside A
  h.sched.submit(simple_job(4, 4 * kHour));     // D: would collide with B plan
  h.engine.run();
  std::map<int, std::vector<SimTime>> starts;
  for (const Job& j : h.finished) starts[j.req.nodes].push_back(j.start_time);
  EXPECT_EQ(starts[16][0], 2 * kHour);
  EXPECT_EQ(starts[4][0], 0);           // C backfills
  EXPECT_EQ(starts[4][1], 3 * kHour);   // D after B
}

TEST(Scheduler, UtilizationAndMetrics) {
  Harness h;
  h.sched.submit(simple_job(8, 2 * kHour));
  h.sched.submit(simple_job(8, 2 * kHour));
  h.engine.run();
  const SchedulerMetrics& m = h.sched.metrics();
  EXPECT_EQ(m.jobs_finished(), 2u);
  // 16 node-hours * 2 jobs... 8 nodes * 8 cores * 2h each = 128 core-h.
  EXPECT_NEAR(m.delivered_core_seconds(), 2 * 8 * 8 * 2 * 3600.0, 1e-6);
  // Machine 16x8=128 cores over 2h -> 256 core-hours capacity, 256 used.
  EXPECT_NEAR(m.utilization(h.res.total_cores(), 2 * kHour), 1.0, 1e-9);
  EXPECT_EQ(m.jobs_killed(), 0u);
  EXPECT_EQ(m.jobs_failed(), 0u);
}

TEST(Scheduler, EstimateStartEmptyMachine) {
  Harness h;
  EXPECT_EQ(h.sched.estimate_start(16, kHour), 0);
}

TEST(Scheduler, EstimateStartAccountsForQueue) {
  Harness h;
  h.sched.submit(simple_job(16, 2 * kHour));
  h.sched.submit(simple_job(16, kHour));
  // Machine busy 0-2h, queued head 2-3h; a 16-node job lands at 3h.
  EXPECT_EQ(h.sched.estimate_start(16, kHour), 3 * kHour);
  // A 1-node probe still can't fit earlier (16-node jobs hold everything).
  EXPECT_EQ(h.sched.estimate_start(1, kHour), 3 * kHour);
}

TEST(Reservation, BlocksJobsDuringWindow) {
  Harness h;
  const ReservationId r =
      h.sched.reserve(kHour, kHour, 16);  // [1h,2h) everything
  ASSERT_TRUE(r.valid());
  // A 2-hour full-machine job cannot start now (would overlap), nor at 1h;
  // earliest is 2h.
  h.sched.submit(simple_job(16, 2 * kHour));
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].start_time, 2 * kHour);
}

TEST(Reservation, ConflictingReservationRejected) {
  Harness h;
  ASSERT_TRUE(h.sched.reserve(kHour, kHour, 10).valid());
  EXPECT_FALSE(h.sched.reserve(kHour, kHour, 10).valid());   // 20 > 16
  EXPECT_TRUE(h.sched.reserve(kHour, kHour, 6).valid());     // fits
}

TEST(Reservation, AttachedJobStartsAtWindow) {
  Harness h;
  const ReservationId r = h.sched.reserve(2 * kHour, kHour, 8);
  ASSERT_TRUE(r.valid());
  const JobId id = h.sched.attach_to_reservation(r, simple_job(8, kHour));
  EXPECT_TRUE(id.valid());
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].start_time, 2 * kHour);
  EXPECT_EQ(h.finished[0].end_time, 3 * kHour);
  EXPECT_EQ(h.sched.free_nodes(), 16);
}

TEST(Reservation, EarlyJobEndReleasesReservation) {
  Harness h;
  const ReservationId r = h.sched.reserve(0, 4 * kHour, 16);
  const JobId id =
      h.sched.attach_to_reservation(r, simple_job(16, kHour, 4 * kHour));
  ASSERT_TRUE(id.valid());
  // Queued job should start when the attached job ends at 1h, not at 4h.
  h.sched.submit(simple_job(16, kHour));
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.finished[1].start_time, kHour);
}

TEST(Reservation, AttachValidation) {
  Harness h;
  const ReservationId r = h.sched.reserve(kHour, kHour, 4);
  EXPECT_THROW(h.sched.attach_to_reservation(r, simple_job(8, kHour)),
               PreconditionError);  // wider than reservation
  EXPECT_THROW(h.sched.attach_to_reservation(r, simple_job(4, 2 * kHour)),
               PreconditionError);  // longer than window
  EXPECT_THROW(h.sched.attach_to_reservation(ReservationId{999},
                                             simple_job(1, kHour)),
               PreconditionError);
  const JobId ok = h.sched.attach_to_reservation(r, simple_job(4, kHour));
  EXPECT_TRUE(ok.valid());
  EXPECT_THROW(h.sched.attach_to_reservation(r, simple_job(1, kHour)),
               PreconditionError);  // already attached
}

TEST(Reservation, CancelBeforeStart) {
  Harness h;
  const ReservationId r = h.sched.reserve(kHour, kHour, 16);
  const JobId id = h.sched.attach_to_reservation(r, simple_job(16, kHour));
  ASSERT_TRUE(id.valid());
  EXPECT_TRUE(h.sched.cancel_reservation(r));
  EXPECT_FALSE(h.sched.cancel_reservation(r));
  h.engine.run();
  // The attached job was cancelled along with the reservation.
  ASSERT_EQ(h.finished.size(), 1u);
  EXPECT_EQ(h.finished[0].state, JobState::kCancelled);
  EXPECT_EQ(h.sched.free_nodes(), 16);
}

TEST(Drain, JobsNeverCrossFence) {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kEasyBackfill;
  cfg.drain_period = 6 * kHour;
  Harness h(cfg);
  // Submitted at t=0 with 4h walltime: fits before the 6h fence.
  h.sched.submit(simple_job(8, 4 * kHour));
  // 8h walltime job cannot fit between fences 6h apart... it would never
  // run; use 5h: must start at a fence boundary (6h) because starting at
  // 0..1h would cross the 6h fence only if start > 1h. At t=0 it fits.
  h.sched.submit(simple_job(8, 5 * kHour));
  h.engine.run();
  for (const Job& j : h.finished) {
    // No fence (multiple of drain_period) strictly inside (start, end).
    for (SimTime f = cfg.drain_period; f < j.end_time;
         f += cfg.drain_period) {
      EXPECT_FALSE(j.start_time < f && f < j.end_time)
          << "job crossed fence at " << f;
    }
  }
  ASSERT_EQ(h.finished.size(), 2u);
  EXPECT_EQ(h.finished[0].start_time, 0);
  EXPECT_EQ(h.finished[1].start_time, 0);  // both fit before 6h fence
}

TEST(Drain, CapabilityJobGetsPriorityAfterFence) {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kEasyBackfill;
  cfg.drain_period = 6 * kHour;
  cfg.capability_fraction = 0.5;
  Harness h(cfg);
  // Fill the machine until 5h.
  h.sched.submit(simple_job(16, 5 * kHour));
  // Queue a small job (submitted first) and then a capability job.
  h.sched.submit(simple_job(2, 2 * kHour));
  h.sched.submit(simple_job(16, 2 * kHour));
  h.engine.run();
  std::map<int, SimTime> start_by_width;
  std::map<int, SimTime> end_by_width;
  for (const Job& j : h.finished) {
    if (j.req.nodes == 16 && j.start_time == 0) continue;  // filler
    start_by_width[j.req.nodes] = j.start_time;
  }
  // The capability job starts at the 6h fence; the small job cannot start
  // at 5h (would cross the fence with 2h runtime? 5h+2h=7h crosses 6h) so
  // it also waits, but the capability job goes first.
  EXPECT_EQ(start_by_width[16], 6 * kHour);
  EXPECT_GE(start_by_width[2], 8 * kHour);
}

TEST(Drain, UtilizationLossVsNoDrain) {
  // Sanity: the same workload delivers identical core-seconds with and
  // without drains, but takes longer with drains.
  const auto run_one = [](Duration drain) {
    SchedulerConfig cfg;
    cfg.policy = SchedPolicy::kEasyBackfill;
    cfg.drain_period = drain;
    Harness h(cfg);
    for (int i = 0; i < 20; ++i) {
      h.sched.submit(simple_job(8, 5 * kHour));
    }
    h.engine.run();
    return h.engine.now();
  };
  const SimTime no_drain = run_one(0);
  const SimTime with_drain = run_one(6 * kHour);
  EXPECT_GT(with_drain, no_drain);
}

TEST(SchedulerPool, BuildsOnePerComputeResource) {
  Engine e;
  const Platform p = mini_platform();
  SchedulerPool pool(e, p);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.at(p.compute()[0].id).resource().name, "ClusterA");
  EXPECT_THROW((void)pool.at(ResourceId{99}), PreconditionError);
  int ends = 0;
  pool.add_on_end_all([&](const Job&) { ++ends; });
  JobRequest req = simple_job(1, kHour);
  pool.at(p.compute()[0].id).submit(req);
  pool.at(p.compute()[1].id).submit(req);
  e.run();
  EXPECT_EQ(ends, 2);
}

TEST(SchedulerPool, ResourceIdsInPlatformOrder) {
  Engine e;
  const Platform p = teragrid_2010();
  SchedulerPool pool(e, p);
  const auto ids = pool.resource_ids();
  ASSERT_EQ(ids.size(), p.compute().size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i].value(), static_cast<ResourceId::rep>(i));
  }
}

// Conservation property: node-seconds delivered never exceed capacity, and
// free_nodes returns to full after the queue drains, across policies.
class PolicySweep : public ::testing::TestWithParam<SchedPolicy> {};

TEST_P(PolicySweep, NodeAccountingConserved) {
  SchedulerConfig cfg;
  cfg.policy = GetParam();
  Harness h(cfg);
  Rng rng(99);
  for (int i = 0; i < 120; ++i) {
    JobRequest req = simple_job(
        static_cast<int>(rng.uniform_int(1, 16)),
        rng.uniform_int(10 * kMinute, 6 * kHour));
    req.requested_walltime = static_cast<Duration>(
        static_cast<double>(req.actual_runtime) * rng.uniform(1.0, 2.5));
    if (rng.bernoulli(0.1)) {
      req.fails = true;
      req.fail_after = req.actual_runtime / 2;
    }
    h.engine.schedule_at(rng.uniform_int(0, 24 * kHour),
                         [&h, req] { h.sched.submit(req); });
  }
  h.engine.run();
  EXPECT_EQ(h.finished.size(), 120u);
  EXPECT_EQ(h.sched.free_nodes(), 16);
  EXPECT_EQ(h.sched.queue_length(), 0u);
  EXPECT_EQ(h.sched.running_jobs(), 0u);
  // Utilization over the makespan cannot exceed 1.
  EXPECT_LE(h.sched.metrics().utilization(h.res.total_cores(),
                                          h.engine.now()),
            1.0 + 1e-9);
  // Every job started no earlier than submitted and ended after starting.
  for (const Job& j : h.finished) {
    EXPECT_GE(j.start_time, j.submit_time);
    EXPECT_GT(j.end_time, j.start_time);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(SchedPolicy::kFcfs,
                                           SchedPolicy::kEasyBackfill,
                                           SchedPolicy::kConservativeBackfill));

// --- capability_threshold regression: exact ceiling over boundary fractions.

TEST(CeilFraction, ExactAtIntegerProducts) {
  // Products that land exactly on an integer must not round up a step.
  EXPECT_EQ(ceil_fraction(0.5, 16), 8);
  EXPECT_EQ(ceil_fraction(0.25, 16), 4);
  EXPECT_EQ(ceil_fraction(1.0, 1024), 1024);
  EXPECT_EQ(ceil_fraction(0.5, 1), 1);
}

TEST(CeilFraction, RoundsUpFractionalProducts) {
  EXPECT_EQ(ceil_fraction(0.5, 5), 3);     // 2.5 -> 3
  EXPECT_EQ(ceil_fraction(0.75, 5), 4);    // 3.75 -> 4
  EXPECT_EQ(ceil_fraction(0.5, 1023), 512);  // 511.5 -> 512
}

TEST(CeilFraction, TinyFractionalPartStillCeils) {
  // The old "+ 0.999" hack floor()ed any product whose fractional part was
  // below 0.001 — e.g. 1000 * 0.0040005 = 4.0005 came out as 4, not 5.
  EXPECT_EQ(ceil_fraction(0.0040005, 1000), 5);
  // And a fractional part of exactly 0.999 could double-bump under noise;
  // the exact path is immune: 3.999 -> 4.
  EXPECT_EQ(ceil_fraction(0.003999, 1000), 4);
}

TEST(CeilFraction, ExtremeFractions) {
  EXPECT_EQ(ceil_fraction(1e-12, 4096), 1);  // any positive fraction needs 1
  EXPECT_EQ(ceil_fraction(1.0, 1), 1);
  EXPECT_THROW((void)ceil_fraction(0.0, 16), PreconditionError);
  EXPECT_THROW((void)ceil_fraction(1.5, 16), PreconditionError);
  EXPECT_THROW((void)ceil_fraction(0.5, 0), PreconditionError);
}

TEST(CeilFraction, AgreesWithRationalCeilingAcrossSweep) {
  // For fractions k/64 (exactly representable) the result must equal the
  // rational ceiling for every machine size, with no FP-noise dependence.
  for (int k = 1; k <= 64; ++k) {
    const double fraction = static_cast<double>(k) / 64.0;
    for (int nodes : {1, 7, 16, 63, 64, 100, 1023, 4096}) {
      const long long expect =
          (static_cast<long long>(k) * nodes + 63) / 64;  // ceil(k*n/64)
      ASSERT_EQ(ceil_fraction(fraction, nodes), expect)
          << "fraction=" << k << "/64 nodes=" << nodes;
    }
  }
}

// --- job-id folding contract: resource band width and overflow guards.

TEST(SchedulerJobIds, DocumentsIdSpaceContract) {
  // Ids are (resource.id + 1) << kJobIdResourceShift plus a counter, so two
  // schedulers never hand out the same JobId until a resource exceeds
  // kMaxResourceId or a scheduler issues kMaxJobsPerResource jobs.
  Engine engine;
  ComputeResource a = test_resource();
  a.id = ResourceId{0};
  ComputeResource b = test_resource();
  b.id = ResourceId{1};
  ResourceScheduler sa(engine, a);
  ResourceScheduler sb(engine, b);
  const JobId ja = sa.submit(simple_job(1, kHour));
  const JobId jb = sb.submit(simple_job(1, kHour));
  EXPECT_NE(ja, jb);
  EXPECT_EQ(ja.value() >> kJobIdResourceShift, 1);
  EXPECT_EQ(jb.value() >> kJobIdResourceShift, 2);
  engine.run();
}

TEST(SchedulerJobIds, RejectsResourceIdOutsideFoldingRange) {
  Engine engine;
  ComputeResource r = test_resource();
  r.id = ResourceId{kMaxResourceId};
  EXPECT_NO_THROW(ResourceScheduler(engine, r));
  // One past the documented limit: the band would overflow the sign bit of
  // JobId::rep and silently collide; construction must refuse instead.
  r.id = ResourceId{kMaxResourceId + 1};
  EXPECT_THROW(ResourceScheduler(engine, r), PreconditionError);
  r.id = ResourceId{};  // invalid (negative) id
  EXPECT_THROW(ResourceScheduler(engine, r), PreconditionError);
}

// --- drain fences: planning fidelity beyond any materialization horizon.

TEST(SchedulerDrain, FencesHoldArbitrarilyFarOut) {
  // Regression: fences used to be materialized only 120 days out, so a
  // backlog deep enough to push planned starts past that horizon let jobs
  // straddle a drain fence. With analytic periodic fences the planner
  // honours them at any depth. 70 nearly-window-filling jobs reach ~140
  // days; every one must start on its own fence boundary.
  const Duration period = 2 * kDay;
  SchedulerConfig cfg;
  cfg.drain_period = period;
  Harness h(cfg);
  for (int i = 0; i < 70; ++i) {
    h.sched.submit(simple_job(16, 47 * kHour));
  }
  h.engine.run();
  ASSERT_EQ(h.started.size(), 70u);
  for (const Job& j : h.started) {
    const SimTime next_fence = (j.start_time / period + 1) * period;
    EXPECT_LE(j.start_time + 47 * kHour, next_fence)
        << "job " << j.id << " starting at " << j.start_time
        << " runs across the fence at " << next_fence;
  }
  EXPECT_GT(h.started.back().start_time, 120 * kDay);  // past the old horizon
}

TEST(SchedulerDrain, RejectsJobsLongerThanTheDrainPeriod) {
  // Such a job straddles a fence wherever it starts; it used to be accepted
  // and then stuck (or worse, started across a fence past the old horizon).
  SchedulerConfig cfg;
  cfg.drain_period = kDay;
  Harness h(cfg);
  EXPECT_THROW(h.sched.submit(simple_job(1, 25 * kHour)), PreconditionError);
  EXPECT_NO_THROW(h.sched.submit(simple_job(1, 24 * kHour)));
  h.engine.run();
}

TEST(SchedulerDrain, EstimateHonoursFencesBeyondOldHorizon) {
  const Duration period = 2 * kDay;
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kConservativeBackfill;
  cfg.drain_period = period;
  cfg.backfill_depth = 1 << 20;
  Harness h(cfg);
  for (int i = 0; i < 70; ++i) {
    h.sched.submit(simple_job(16, 47 * kHour));
  }
  // A full-width probe lands after the whole backlog, ~140 days out, and
  // must still sit on a fence boundary rather than straddle one.
  const SimTime est = h.sched.estimate_start(16, 47 * kHour);
  EXPECT_GT(est, 120 * kDay);
  EXPECT_LE(est + 47 * kHour, (est / period + 1) * period);
}

// --- wakeup hygiene: a steady backlog must not churn the wakeup event.

TEST(SchedulerWakeup, SteadyBacklogDoesNotChurnWakeupEvents) {
  // One job holds the whole machine until t = 10h; every submission while
  // it runs re-evaluates the head fit, which lands on the same tick each
  // time. The pass must keep the armed wakeup instead of cancel+reschedule
  // per submission (the seed burned two heap operations per event on this).
  Harness h;
  h.sched.submit(simple_job(16, 10 * kHour));
  for (int i = 0; i < 50; ++i) {
    h.engine.schedule_at(static_cast<SimTime>(i) * kMinute,
                         [&] { h.sched.submit(simple_job(16, kHour)); },
                         EventPriority::kSubmission);
  }
  h.engine.run();
  EXPECT_EQ(h.finished.size(), 51u);
  EXPECT_EQ(h.engine.stats().cancelled.value(), 0u);
}

// --- replan accounting: the obs counters distinguish full/incremental.

TEST(SchedulerPlanCache, CountsIncrementalAndCoalescedReplans) {
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kConservativeBackfill;
  Harness h(cfg);
  h.sched.submit(simple_job(16, 4 * kHour));
  // Same-tick burst: ten submissions at one timestamp coalesce into a
  // single deferred pass (nine absorbed requests), and each submission
  // extends the live plan instead of forcing a from-scratch replan.
  h.engine.schedule_at(kHour, [&] {
    for (int i = 0; i < 10; ++i) h.sched.submit(simple_job(8, kHour));
  });
  h.engine.run();
  const SchedulerMetrics& m = h.sched.metrics();
  EXPECT_GE(m.replans_incremental(), 9u);
  EXPECT_GE(m.replans_coalesced(), 9u);
  EXPECT_GT(m.replans_full(), 0u);  // the initial build
  EXPECT_EQ(h.finished.size(), 11u);
}

TEST(SchedulerPlanCache, HorizonKnobKeepsHeadProgress) {
  // With a tight horizon only the queue head is guaranteed planned; jobs
  // beyond the horizon must still run eventually as the window advances.
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kConservativeBackfill;
  cfg.plan_horizon = kHour;  // far smaller than any backlog depth
  Harness h(cfg);
  for (int i = 0; i < 20; ++i) {
    h.sched.submit(simple_job(16, 3 * kHour));
  }
  h.engine.run();
  ASSERT_EQ(h.finished.size(), 20u);
  for (const Job& j : h.finished) {
    EXPECT_EQ(j.state, JobState::kCompleted);
  }
  EXPECT_EQ(h.sched.free_nodes(), 16);
}

}  // namespace
}  // namespace tg
