// Spillable columnar record log (see DESIGN.md §5.9): every query answered
// by the segment log — per-user windows on sealed and open segments, the
// end-sorted fast path and the unsorted by_end permutation, mmap-backed
// spilled segments — must match a brute-force append-order scan exactly,
// at every segment cap. Plus the UsageDatabase segmented-mode parity and
// the SWF import path that streams through it.
#include "accounting/segment_log.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "accounting/swf.hpp"
#include "accounting/usage_db.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

JobRecord job_rec(UserId::rep user, SimTime end, Duration runtime = kHour,
                  double nu = 1.0) {
  JobRecord r;
  r.job = JobId{end};
  r.user = UserId{user};
  r.project = ProjectId{0};
  r.submit_time = end - runtime;
  r.start_time = end - runtime;
  r.end_time = end;
  r.nodes = 1;
  r.cores_per_node = 8;
  r.requested_walltime = runtime;
  r.charged_nu = nu;
  return r;
}

/// Identity of a record for comparisons across storage modes (pointers
/// differ between the monolithic vectors and the segment log / mmap).
using Key = std::tuple<JobId::rep, SimTime, UserId::rep>;

Key key_of(const JobRecord& r) {
  return {r.job.value(), r.end_time, r.user.valid() ? r.user.value() : -1};
}

/// A per-test scratch directory for spill files (unique per gtest test, so
/// parallel ctest processes never collide).
std::filesystem::path spill_dir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  auto dir = std::filesystem::temp_directory_path() /
             (std::string("tgsim_seglog_") + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// The record stream under test: several users, end times either
/// monotone (the live Recorder's order) or shuffled (archive imports),
/// including invalid-user records that must be stored but never indexed.
std::vector<JobRecord> make_stream(bool sorted, int n = 300) {
  Rng rng(77);
  std::vector<JobRecord> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const SimTime end = sorted ? (i + 1) * kHour
                               : rng.uniform_int(1, 500) * kHour;
    JobRecord r = job_rec(static_cast<UserId::rep>(i % 9), end);
    if (i % 17 == 0) r.user = UserId{};  // attribute-less accounting line
    out.push_back(r);
  }
  return out;
}

std::vector<Key> brute_of(const std::vector<JobRecord>& all, UserId user,
                          SimTime from, SimTime to) {
  std::vector<Key> out;
  for (const JobRecord& r : all) {
    if (r.user == user && r.end_time >= from && r.end_time < to) {
      out.push_back(key_of(r));
    }
  }
  return out;
}

std::vector<Key> brute_ending(const std::vector<JobRecord>& all, SimTime from,
                              SimTime to) {
  std::vector<Key> out;
  for (const JobRecord& r : all) {
    if (r.end_time >= from && r.end_time < to) out.push_back(key_of(r));
  }
  return out;
}

void expect_log_matches_brute(const SegmentLog<JobRecord>& log,
                              const std::vector<JobRecord>& all) {
  for (UserId::rep u = 0; u < 9; ++u) {
    for (const auto& [from, to] :
         {std::pair<SimTime, SimTime>{0, 501 * kHour},
          {100 * kHour, 300 * kHour},
          {250 * kHour, 250 * kHour + 1},
          {400 * kHour, 100 * kHour}}) {
      std::vector<Key> got;
      log.for_each_of(UserId{u}, from, to,
                      [&got](const JobRecord& r) { got.push_back(key_of(r)); });
      EXPECT_EQ(got, brute_of(all, UserId{u}, from, to))
          << "user " << u << " window [" << from << ", " << to << ")";
    }
    std::vector<Key> all_time;
    log.for_each_of(UserId{u}, [&all_time](const JobRecord& r) {
      all_time.push_back(key_of(r));
    });
    EXPECT_EQ(all_time, brute_of(all, UserId{u}, 0, kMaxSimTime));
  }
  std::vector<Key> none;
  log.for_each_of(UserId{}, [&none](const JobRecord& r) {
    none.push_back(key_of(r));
  });
  EXPECT_TRUE(none.empty());  // invalid ids are stored but never indexed
  for (const auto& [from, to] : {std::pair<SimTime, SimTime>{0, 501 * kHour},
                                {120 * kHour, 310 * kHour},
                                {0, 0}}) {
    std::vector<Key> got;
    log.for_each_ending_in(from, to, [&got](const JobRecord& r) {
      got.push_back(key_of(r));
    });
    EXPECT_EQ(got, brute_ending(all, from, to));
  }
}

TEST(SegmentLog, QueriesMatchBruteForceAcrossCaps) {
  for (const bool sorted : {true, false}) {
    const std::vector<JobRecord> all = make_stream(sorted);
    for (const std::uint32_t cap : {0u, 1u, 3u, 64u}) {
      SegmentLogConfig cfg;
      cfg.segment_records = cap;
      SegmentLog<JobRecord> log(cfg, "jobs");
      for (const JobRecord& r : all) log.append(r);
      EXPECT_EQ(log.size(), all.size());
      EXPECT_EQ(log.user_limit(), 9);
      if (cap > 0) EXPECT_GE(log.stats().sealed, all.size() / cap - 1);
      expect_log_matches_brute(log, all);
    }
  }
}

TEST(SegmentLog, SpilledSegmentsAnswerFromMmap) {
  const auto dir = spill_dir();
  for (const bool sorted : {true, false}) {
    const std::vector<JobRecord> all = make_stream(sorted);
    SegmentLogConfig cfg;
    cfg.segment_records = 16;
    cfg.resident_segments = 1;  // almost everything sealed must spill
    cfg.spill_dir = (dir / (sorted ? "sorted" : "shuffled")).string();
    std::filesystem::create_directories(cfg.spill_dir);
    SegmentLog<JobRecord> log(cfg, "jobs");
    for (const JobRecord& r : all) log.append(r);
    EXPECT_GT(log.stats().spilled, 0u);
    EXPECT_GT(log.stats().spilled_bytes, 0u);
    EXPECT_EQ(log.stats().spill_failures, 0u);
    expect_log_matches_brute(log, all);
  }
  std::filesystem::remove_all(dir);
}

TEST(SegmentLog, SpillFailureKeepsSegmentResidentAndCorrect) {
  const std::vector<JobRecord> all = make_stream(/*sorted=*/true, 100);
  SegmentLogConfig cfg;
  cfg.segment_records = 16;
  cfg.resident_segments = 0;
  cfg.spill_dir = "/nonexistent/tgsim/spill/dir";  // every write fails
  SegmentLog<JobRecord> log(cfg, "jobs");
  for (const JobRecord& r : all) log.append(r);
  EXPECT_GT(log.stats().spill_failures, 0u);
  EXPECT_EQ(log.stats().spilled, 0u);
  expect_log_matches_brute(log, all);  // data stayed resident
}

/// Segmented UsageDatabase answers the shared query surface identically to
/// the monolithic vectors over the same append stream.
TEST(SegmentLog, DatabaseSegmentedModeParity) {
  const auto dir = spill_dir();
  for (const bool sorted : {true, false}) {
    const std::vector<JobRecord> all = make_stream(sorted);
    UsageDatabase plain;
    UsageDatabase seg;
    SegmentLogConfig cfg;
    cfg.segment_records = 32;
    cfg.resident_segments = 1;
    cfg.spill_dir = (dir / (sorted ? "s" : "u")).string();
    std::filesystem::create_directories(cfg.spill_dir);
    seg.enable_segments(cfg);
    EXPECT_TRUE(seg.segmented());
    for (const JobRecord& r : all) {
      plain.add(r);
      seg.add(r);
    }
    EXPECT_EQ(seg.job_count(), plain.job_count());
    EXPECT_EQ(seg.user_id_limit(), plain.user_id_limit());
    EXPECT_DOUBLE_EQ(seg.total_nu(), plain.total_nu());
    EXPECT_GT(seg.segment_stats().spilled, 0u);
    const auto keys = [](const std::vector<const JobRecord*>& rs) {
      std::vector<Key> out;
      for (const JobRecord* r : rs) out.push_back(key_of(*r));
      return out;
    };
    for (UserId::rep u = 0; u < plain.user_id_limit(); ++u) {
      EXPECT_EQ(keys(seg.jobs_of(UserId{u})), keys(plain.jobs_of(UserId{u})));
      const auto got = seg.records_of(UserId{u}, 50 * kHour, 400 * kHour);
      const auto want = plain.records_of(UserId{u}, 50 * kHour, 400 * kHour);
      EXPECT_EQ(keys(got.jobs), keys(want.jobs));
    }
    EXPECT_EQ(keys(seg.jobs_ending_in(60 * kHour, 120 * kHour)),
              keys(plain.jobs_ending_in(60 * kHour, 120 * kHour)));
  }
  std::filesystem::remove_all(dir);
}

TEST(SegmentLog, SegmentedModeForbidsRowAccess) {
  UsageDatabase db;
  db.enable_segments(SegmentLogConfig{});
  db.add(job_rec(0, kHour));
  EXPECT_THROW(db.jobs(), PreconditionError);
  EXPECT_THROW(db.job_rows_of(UserId{0}), PreconditionError);
  EXPECT_THROW(db.job_window(0, kDay), PreconditionError);
  // ... but the shared query surface keeps working.
  EXPECT_EQ(db.jobs_of(UserId{0}).size(), 1u);
  EXPECT_EQ(db.job_count(), 1u);
}

TEST(SegmentLog, EnableSegmentsRequiresEmptyDatabase) {
  UsageDatabase db;
  db.add(job_rec(0, kHour));
  EXPECT_THROW(db.enable_segments(SegmentLogConfig{}), PreconditionError);
}

/// SWF archives stream through the segment log line by line: the segmented
/// import must land the identical record stream (and parse diagnostics) as
/// the monolithic one.
TEST(SegmentLog, SwfImportStreamsThroughSegments) {
  UsageDatabase source;
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    JobRecord r = job_rec(static_cast<UserId::rep>(i % 5),
                          rng.uniform_int(1, 400) * kHour);
    if (i % 4 == 0) {
      r.gateway = GatewayId{0};
      r.gateway_end_user = EndUserId{static_cast<EndUserId::rep>(i % 11)};
    }
    source.add(r);
  }
  std::ostringstream swf;
  export_swf(source, swf);

  std::istringstream plain_in(swf.str());
  UsageDatabase plain;
  const SwfParseStats plain_stats = import_swf_records(plain_in, plain);

  std::istringstream seg_in(swf.str());
  UsageDatabase seg;
  SegmentLogConfig cfg;
  cfg.segment_records = 16;
  seg.enable_segments(cfg);
  const SwfParseStats seg_stats = import_swf_records(seg_in, seg);

  EXPECT_EQ(plain_stats.parsed, 120u);
  EXPECT_EQ(seg_stats.parsed, plain_stats.parsed);
  EXPECT_EQ(seg_stats.skipped, plain_stats.skipped);
  EXPECT_EQ(seg.job_count(), plain.job_count());
  for (UserId::rep u = 0; u < plain.user_id_limit(); ++u) {
    const auto got = seg.jobs_of(UserId{u});
    const auto want = plain.jobs_of(UserId{u});
    ASSERT_EQ(got.size(), want.size()) << "user " << u;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(key_of(*got[i]), key_of(*want[i]));
      EXPECT_EQ(got[i]->gateway.valid(), want[i]->gateway.valid());
    }
  }
}

/// Restart recovery (the kill/reopen path): checkpoint seals and spills
/// everything, the process "dies" (the database is destroyed), and a fresh
/// process reopens the spill directory. Every query and aggregate must
/// match a plain in-memory reference, and the recovered log must keep
/// accepting appends.
TEST(SegmentLog, CheckpointThenRecoverAcrossRestart) {
  const auto dir = spill_dir();
  SegmentLogConfig cfg;
  cfg.segment_records = 32;
  cfg.spill_dir = dir.string();

  const auto stream = make_stream(/*sorted=*/false, 500);
  UsageDatabase reference;
  {
    // "Process 1": segmented database, full stream, checkpoint, death.
    UsageDatabase db;
    db.enable_segments(cfg);
    for (const JobRecord& r : stream) {
      db.add(r);
      reference.add(r);
    }
    TransferRecord t;
    t.transfer = TransferId{1};
    t.src = SiteId{0};
    t.dst = SiteId{1};
    t.user = UserId{2};
    t.bytes = 1e9;
    t.end_time = 40 * kHour;
    db.add(t);
    reference.add(t);
    SessionRecord sess;
    sess.user = UserId{3};
    sess.resource = ResourceId{0};
    sess.start_time = kHour;
    sess.end_time = 2 * kHour;
    db.add(sess);
    reference.add(sess);
    ASSERT_TRUE(db.checkpoint_segments());
  }

  // "Process 2": an empty database reopens the directory.
  UsageDatabase db;
  db.recover_segments(cfg);
  EXPECT_EQ(db.job_count(), reference.job_count());
  EXPECT_EQ(db.transfer_count(), reference.transfer_count());
  EXPECT_EQ(db.session_count(), reference.session_count());
  EXPECT_DOUBLE_EQ(db.total_nu(), reference.total_nu());
  EXPECT_EQ(db.user_id_limit(), reference.user_id_limit());
  for (UserId::rep u = 0; u < reference.user_id_limit(); ++u) {
    const auto got = db.jobs_of(UserId{u});
    const auto want = reference.jobs_of(UserId{u});
    ASSERT_EQ(got.size(), want.size()) << "user " << u;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(key_of(*got[i]), key_of(*want[i]));
    }
    const auto got_win = db.records_of(UserId{u}, 0, 200 * kHour);
    const auto want_win = reference.records_of(UserId{u}, 0, 200 * kHour);
    EXPECT_EQ(got_win.jobs.size(), want_win.jobs.size());
    EXPECT_EQ(got_win.transfers.size(), want_win.transfers.size());
    EXPECT_EQ(got_win.sessions.size(), want_win.sessions.size());
  }

  // Recovery is a live log, not an archive: appends keep working and the
  // indexes cover old and new records alike.
  const std::size_t before = db.jobs_of(UserId{1}).size();
  db.add(job_rec(1, 999 * kHour));
  EXPECT_EQ(db.jobs_of(UserId{1}).size(), before + 1);
}

TEST(SegmentLog, RecoverFromEmptyDirectoryYieldsEmptyLog) {
  const auto dir = spill_dir();
  SegmentLogConfig cfg;
  cfg.segment_records = 16;
  cfg.spill_dir = dir.string();
  UsageDatabase db;
  db.recover_segments(cfg);
  EXPECT_EQ(db.job_count(), 0u);
  EXPECT_DOUBLE_EQ(db.total_nu(), 0.0);
  db.add(job_rec(0, kHour));
  EXPECT_EQ(db.job_count(), 1u);
}

TEST(SegmentLog, CheckpointWithoutSpillDirReportsFailure) {
  SegmentLogConfig cfg;
  cfg.segment_records = 8;
  UsageDatabase db;
  db.enable_segments(cfg);
  db.add(job_rec(0, kHour));
  EXPECT_FALSE(db.checkpoint_segments());
}

/// Checkpoint twice: the second call must not re-spill already-spilled
/// segments (idempotence), and recovery still sees exactly one copy.
TEST(SegmentLog, CheckpointIsIdempotent) {
  const auto dir = spill_dir();
  SegmentLogConfig cfg;
  cfg.segment_records = 8;
  cfg.spill_dir = dir.string();
  UsageDatabase db;
  db.enable_segments(cfg);
  for (int i = 0; i < 20; ++i) {
    db.add(job_rec(0, (i + 1) * kHour));
  }
  ASSERT_TRUE(db.checkpoint_segments());
  const SegmentLogStats first = db.segment_stats();
  ASSERT_TRUE(db.checkpoint_segments());
  EXPECT_EQ(db.segment_stats().spilled, first.spilled);

  UsageDatabase recovered;
  recovered.recover_segments(cfg);
  EXPECT_EQ(recovered.job_count(), 20u);
}

}  // namespace
}  // namespace tg
