// The sharded DES core (DESIGN.md §5.7): shard-plan derivation, the
// merged/windowed equivalence contract, staged-effect (mailbox) ordering,
// partition serialization, and the window safety checks.
#include "des/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "des/engine.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace tg {
namespace {

// --- Shard plan ------------------------------------------------------------

TEST(ShardPlan, CoordinatorPlusOnePartitionPerSite) {
  const ShardPlan plan = plan_shards(3, {25, 10, 25});
  EXPECT_EQ(plan.partitions, 4u);
  ASSERT_EQ(plan.site_partition.size(), 3u);
  EXPECT_EQ(plan.partition_of_site(0), 1u);
  EXPECT_EQ(plan.partition_of_site(1), 2u);
  EXPECT_EQ(plan.partition_of_site(2), 3u);
}

TEST(ShardPlan, LookaheadIsMinimumLinkLatency) {
  EXPECT_EQ(plan_shards(4, {25, 10, 40}).wan_lookahead, 10);
}

TEST(ShardPlan, ZeroLookaheadFallbackWithoutLinks) {
  // Single-site (or link-free) platforms: no WAN, lookahead degenerates to
  // zero and the window driver relies purely on the earliest wall.
  EXPECT_EQ(plan_shards(1, {}).wan_lookahead, 0);
  EXPECT_EQ(plan_shards(2, {}).wan_lookahead, 0);
}

// --- Merged / windowed equivalence -----------------------------------------

/// The observer idiom the sharded scheduler uses: emit directly in merged
/// context, defer through the staged mailbox inside a window. The log's
/// final order must be identical either way.
void emit(Engine& e, std::vector<std::string>& log, std::string tag) {
  if (e.in_window()) {
    e.stage_effect([&log, tag = std::move(tag)] { log.push_back(tag); });
  } else {
    log.push_back(std::move(tag));
  }
}

struct ModeResult {
  std::vector<std::string> log;
  std::uint64_t events = 0;
  SimTime final_now = 0;
  std::uint64_t window_rounds = 0;
};

/// A three-partition workload: coordinator walls seed partition-local
/// chains (each local reschedules itself within its partition, like pass
/// events), and every event emits an observer tag.
ModeResult run_workload(int shards) {
  Engine e;
  e.configure_partitions(3);
  std::unique_ptr<ThreadPool> pool;
  if (shards >= 2) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(shards));
  }
  if (shards > 0) e.set_window_execution(true, pool.get());

  ModeResult out;
  std::vector<std::string>& log = out.log;

  // Each chain step is partition-local (same-partition kLocal scheduling
  // from inside a window is the one legal extension).
  std::function<void(std::uint32_t, SimTime, int)> chain =
      [&](std::uint32_t shard, SimTime t, int depth) {
        e.schedule_at(
            t,
            [&, shard, t, depth] {
              emit(e, log,
                   "L" + std::to_string(shard) + "@" + std::to_string(t));
              if (depth > 0) chain(shard, t + 7, depth - 1);
            },
            EventPriority::kDefault, EventBinding{shard, EventClass::kLocal});
      };

  // Coordinator walls every 100 ticks; each seeds fresh chains on both
  // site partitions (cross-partition scheduling, legal from a wall).
  for (SimTime wall = 50; wall <= 450; wall += 100) {
    e.schedule_at(wall, [&, wall] {
      emit(e, log, "W@" + std::to_string(wall));
      chain(1, wall + 3, 4);
      chain(2, wall + 5, 4);
    });
  }
  e.run_until(400);
  e.run();

  out.events = e.events_processed();
  out.final_now = e.now();
  out.window_rounds = e.shard_stats().window_rounds.value();
  return out;
}

TEST(ShardedEngine, WindowedModesMatchMergedOracle) {
  const ModeResult merged = run_workload(0);
  const ModeResult inline_windows = run_workload(1);
  const ModeResult pooled = run_workload(2);

  EXPECT_EQ(merged.log, inline_windows.log);
  EXPECT_EQ(merged.log, pooled.log);
  EXPECT_EQ(merged.events, inline_windows.events);
  EXPECT_EQ(merged.events, pooled.events);
  EXPECT_EQ(merged.final_now, inline_windows.final_now);
  EXPECT_EQ(merged.final_now, pooled.final_now);

  // The oracle never windows; both windowed modes genuinely did.
  EXPECT_EQ(merged.window_rounds, 0u);
  EXPECT_GT(inline_windows.window_rounds, 0u);
  EXPECT_GT(pooled.window_rounds, 0u);
}

TEST(ShardedEngine, StagedEffectsReplayInCanonicalOrder) {
  // Two partitions with interleaved local times: replay at the barrier
  // must interleave their emissions exactly as the merged loop would,
  // even though each partition ran its whole window contiguously.
  const auto run = [](bool windowed) {
    Engine e;
    e.configure_partitions(3);
    if (windowed) e.set_window_execution(true, nullptr);
    std::vector<std::string> log;
    for (const SimTime t : {10, 30, 50}) {
      e.schedule_at(
          t, [&, t] { emit(e, log, "a" + std::to_string(t)); },
          EventPriority::kDefault, EventBinding{1, EventClass::kLocal});
    }
    for (const SimTime t : {20, 40, 60}) {
      e.schedule_at(
          t, [&, t] { emit(e, log, "b" + std::to_string(t)); },
          EventPriority::kDefault, EventBinding{2, EventClass::kLocal});
    }
    e.run();
    return log;
  };
  const std::vector<std::string> expected{"a10", "b20", "a30",
                                          "b40", "a50", "b60"};
  EXPECT_EQ(run(false), expected);
  EXPECT_EQ(run(true), expected);
}

// --- Partition serialization -----------------------------------------------

TEST(ShardedEngine, SerializedPartitionFiresMergedAndBoundsTheCut) {
  // Partition 1 is serialized: its locals run on the merged loop, where
  // cross-partition scheduling is legal, and they bound the cut so no
  // other partition runs past them.
  const auto run = [](bool windowed) {
    Engine e;
    e.configure_partitions(4);
    if (windowed) e.set_window_execution(true, nullptr);
    e.serialize_partition(1, true);
    std::vector<std::string> log;
    // The serialized local at t=50 schedules onto partition 2 at t=60 —
    // illegal from a window, fine from the merged loop.
    e.schedule_at(
        50,
        [&] {
          emit(e, log, "serialized@50");
          e.schedule_at(
              60, [&] { emit(e, log, "cross@60"); }, EventPriority::kDefault,
              EventBinding{2, EventClass::kLocal});
        },
        EventPriority::kDefault, EventBinding{1, EventClass::kLocal});
    // Window fodder on partitions 2 and 3, straddling t=50: events past
    // the serialized front must not fire before it.
    for (const SimTime t : {40, 70}) {
      e.schedule_at(
          t, [&, t] { emit(e, log, "p2@" + std::to_string(t)); },
          EventPriority::kDefault, EventBinding{2, EventClass::kLocal});
      e.schedule_at(
          t + 5, [&, t] { emit(e, log, "p3@" + std::to_string(t + 5)); },
          EventPriority::kDefault, EventBinding{3, EventClass::kLocal});
    }
    e.run();
    return log;
  };
  const std::vector<std::string> expected{"p2@40",  "p3@45",   "serialized@50",
                                          "cross@60", "p2@70", "p3@75"};
  EXPECT_EQ(run(false), expected);
  EXPECT_EQ(run(true), expected);
}

TEST(ShardedEngine, SerializeCallsNest) {
  Engine e;
  e.configure_partitions(2);
  e.serialize_partition(1, true);
  e.serialize_partition(1, true);
  e.serialize_partition(1, false);
  e.serialize_partition(1, false);
  EXPECT_THROW(e.serialize_partition(1, false), InvariantError);
}

// --- Window safety checks --------------------------------------------------

/// Runs `bad(engine)` inside an inline window round on partition 1 (a
/// second eligible partition guarantees the round actually happens).
/// Violations surface as exceptions out of run_until.
void run_offending_window(const std::function<void(Engine&)>& bad) {
  Engine e;
  e.configure_partitions(3);
  e.set_window_execution(true, nullptr);
  e.schedule_at(10, [&e, &bad] { bad(e); }, EventPriority::kDefault,
                EventBinding{1, EventClass::kLocal});
  e.schedule_at(20, [] {}, EventPriority::kDefault,
                EventBinding{2, EventClass::kLocal});
  e.run_until(100);
}

TEST(ShardedEngine, WindowRejectsWallScheduling) {
  // The unannotated default is a wall on the firing partition — creating
  // one would tighten a cut already handed to the other workers.
  EXPECT_THROW(
      run_offending_window([](Engine& e) { e.schedule_at(30, [] {}); }),
      InvariantError);
}

TEST(ShardedEngine, WindowRejectsCrossPartitionScheduling) {
  EXPECT_THROW(run_offending_window([](Engine& e) {
                 e.schedule_at(
                     30, [] {}, EventPriority::kDefault,
                     EventBinding{2, EventClass::kLocal});
               }),
               InvariantError);
}

TEST(ShardedEngine, WindowRejectsCrossPartitionCancel) {
  EXPECT_THROW(
      {
        Engine e;
        e.configure_partitions(3);
        e.set_window_execution(true, nullptr);
        const EventId other = e.schedule_at(
            90, [] {}, EventPriority::kDefault,
            EventBinding{2, EventClass::kLocal});
        e.schedule_at(
            10, [&e, other] { e.cancel(other); }, EventPriority::kDefault,
            EventBinding{1, EventClass::kLocal});
        e.schedule_at(20, [] {}, EventPriority::kDefault,
                      EventBinding{2, EventClass::kLocal});
        e.run_until(100);
      },
      InvariantError);
}

TEST(ShardedEngine, StagedEffectsMustNotSchedule) {
  // The effect itself is deferred to the barrier; the violation fires at
  // replay time, after the window closed.
  EXPECT_THROW(run_offending_window([](Engine& e) {
                 e.stage_effect([&e] { e.schedule_at(500, [] {}); });
               }),
               InvariantError);
}

TEST(ShardedEngine, StageEffectOutsideWindowIsRejected) {
  Engine e;
  EXPECT_THROW(e.stage_effect([] {}), PreconditionError);
}

TEST(ShardedEngine, ConfigurePartitionsRequiresPristineEngine) {
  Engine e;
  e.schedule_at(10, [] {});
  EXPECT_THROW(e.configure_partitions(3), PreconditionError);
}

TEST(ShardedEngine, WindowRejectsSerializeCalls) {
  // Serialization changes which partitions may run concurrently — flipping
  // it from inside a window would invalidate the cut mid-round.
  EXPECT_THROW(
      run_offending_window([](Engine& e) { e.serialize_partition(2, true); }),
      InvariantError);
}

TEST(ShardedEngine, RejectsUnknownPartitionBinding) {
  Engine e;
  e.configure_partitions(3);
  EXPECT_THROW(e.schedule_at(10, [] {}, EventPriority::kDefault,
                             EventBinding{7, EventClass::kLocal}),
               PreconditionError);
}

TEST(ShardedEngine, ChoiceHookAndWindowsAreMutuallyExclusive) {
  // The interleaving explorer steers the merged loop only: window rounds
  // fire partitions concurrently, so there is no global tie set to present.
  struct Canonical final : ChoiceHook {
    std::size_t choose(const std::vector<Candidate>&) override { return 0; }
  } hook;

  Engine windowed;
  windowed.configure_partitions(3);
  windowed.set_window_execution(true, nullptr);
  EXPECT_THROW(windowed.set_choice_hook(&hook), PreconditionError);

  Engine hooked;
  hooked.configure_partitions(3);
  hooked.set_choice_hook(&hook);
  EXPECT_THROW(hooked.set_window_execution(true, nullptr),
               PreconditionError);
  hooked.set_choice_hook(nullptr);
  hooked.set_window_execution(true, nullptr);  // legal once the hook is gone
}

}  // namespace
}  // namespace tg
