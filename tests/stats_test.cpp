#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), 2.0);
  RunningStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.mean(), 2.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, RejectsBadQ) {
  EXPECT_THROW((void)percentile({1.0}, -0.1), PreconditionError);
  EXPECT_THROW((void)percentile({1.0}, 1.1), PreconditionError);
}

TEST(WeightedMean, Basic) {
  EXPECT_DOUBLE_EQ(weighted_mean({1.0, 3.0}, {1.0, 1.0}), 2.0);
  EXPECT_DOUBLE_EQ(weighted_mean({1.0, 3.0}, {3.0, 1.0}), 1.5);
}

TEST(WeightedMean, ZeroWeightsYieldZero) {
  EXPECT_DOUBLE_EQ(weighted_mean({1.0, 2.0}, {0.0, 0.0}), 0.0);
}

TEST(WeightedMean, SizeMismatchThrows) {
  EXPECT_THROW((void)weighted_mean({1.0}, {1.0, 2.0}), PreconditionError);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness({5.0, 5.0, 5.0}), 1.0);
}

TEST(JainFairness, MaximallyUnfair) {
  // One user gets everything out of n -> index = 1/n.
  EXPECT_NEAR(jain_fairness({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainFairness, EmptyAndZeros) {
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0.0, 0.0}), 1.0);
}

TEST(Summarize, KnownQuantiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.01);
  EXPECT_NEAR(s.p99, 99.01, 0.01);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
}

TEST(SiFormat, Scales) {
  EXPECT_EQ(si_format(950), "950");
  EXPECT_EQ(si_format(1234567), "1.23M");
  EXPECT_EQ(si_format(2.5e9), "2.50G");
  EXPECT_EQ(si_format(-1500), "-1.50k");
}

}  // namespace
}  // namespace tg
