// StreamingExtractor equivalence (DESIGN.md §5.9): at every window
// boundary the streaming features must be *exactly* equal — same bits, no
// tolerance — to FeatureExtractor::extract over the same records, and the
// streaming series must equal classify_series / quarterly_series. Checked
// on fault-free and faulty scenarios, with and without the segment log,
// plus the stream-order contract (drops counted, regressions throw).
#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "workload/scenario.hpp"

namespace tg {
namespace {

constexpr Duration kBucket = 10 * kDay;

/// Exact equality on every field: the contract is bit-identical FP, so
/// EXPECT_EQ (not NEAR) throughout.
void expect_features_identical(const UserFeatures& a, const UserFeatures& b) {
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.total_nu, b.total_nu);
  EXPECT_EQ(a.total_su, b.total_su);
  EXPECT_EQ(a.gateway_fraction, b.gateway_fraction);
  EXPECT_EQ(a.workflow_fraction, b.workflow_fraction);
  EXPECT_EQ(a.burst_fraction, b.burst_fraction);
  EXPECT_EQ(a.coalloc_fraction, b.coalloc_fraction);
  EXPECT_EQ(a.viz_fraction, b.viz_fraction);
  EXPECT_EQ(a.failed_fraction, b.failed_fraction);
  EXPECT_EQ(a.requeued_fraction, b.requeued_fraction);
  EXPECT_EQ(a.outage_killed_fraction, b.outage_killed_fraction);
  EXPECT_EQ(a.max_width_cores, b.max_width_cores);
  EXPECT_EQ(a.max_machine_fraction, b.max_machine_fraction);
  EXPECT_EQ(a.mean_width_cores, b.mean_width_cores);
  EXPECT_EQ(a.mean_runtime_s, b.mean_runtime_s);
  EXPECT_EQ(a.median_runtime_s, b.median_runtime_s);
  EXPECT_EQ(a.distinct_resources, b.distinct_resources);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.viz_sessions, b.viz_sessions);
}

ScenarioConfig make_config(bool faulty, std::uint32_t segment_cap = 0,
                           const std::string& spill = {}) {
  ScenarioConfig config;
  config.mini_platform = true;
  config.horizon = 30 * kDay;
  config.seed = 1234;
  if (faulty) {
    config.faults.outage.mtbf_hours = 120.0;
    config.faults.job_failure_rate_per_hour = 0.001;
  }
  config.streaming.enabled = true;
  config.streaming.bucket = kBucket;  // three whole windows in the horizon
  config.streaming.segments.segment_records = segment_cap;
  config.streaming.segments.spill_dir = spill;
  return config;
}

/// Runs the scenario with a window sink that checks, as each window
/// closes, that the streaming features equal the batch extract of the same
/// window. The batch pass reads the same database the stream populated, so
/// this is valid only without segments (row access) — segment runs are
/// covered by the series-equality tests below.
void expect_windows_match_batch(bool faulty) {
  Scenario scenario(make_config(faulty));
  std::vector<StreamingWindow> closed;
  scenario.subscribe(
      [&closed](const StreamingWindow& w) { closed.push_back(w); });
  scenario.run();
  if (faulty) ASSERT_GT(scenario.fault_stats().outages, 0u);
  ASSERT_EQ(closed.size(), 3u);
  const FeatureExtractor extractor(scenario.platform(),
                                   scenario.config().features);
  for (const StreamingWindow& w : closed) {
    const auto batch = extractor.extract(scenario.db(), w.from, w.to);
    ASSERT_EQ(w.features.size(), batch.size())
        << "window [" << w.from << ", " << w.to << ")";
    for (std::size_t i = 0; i < batch.size(); ++i) {
      expect_features_identical(w.features[i], batch[i]);
    }
    ASSERT_EQ(w.sets.size(), batch.size());
    const RuleClassifier classifier;
    const auto batch_sets = classifier.classify(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(w.sets[i].members, batch_sets[i].members);
      EXPECT_EQ(w.sets[i].primary, batch_sets[i].primary);
    }
  }
}

TEST(Streaming, WindowFeaturesMatchBatchExtractFaultFree) {
  expect_windows_match_batch(/*faulty=*/false);
}

TEST(Streaming, WindowFeaturesMatchBatchExtractFaulty) {
  expect_windows_match_batch(/*faulty=*/true);
}

/// Pads every streaming row to the database's user id horizon (users that
/// never reached the stream in-series don't widen the streaming slab).
std::vector<WindowModalities> padded_series(const Scenario& scenario) {
  std::vector<WindowModalities> out = scenario.streaming()->series();
  for (WindowModalities& w : out) {
    w.resize(static_cast<std::size_t>(scenario.db().user_id_limit()),
             kInactiveUser);
  }
  return out;
}

TEST(Streaming, SeriesMatchesClassifySeries) {
  for (const bool faulty : {false, true}) {
    Scenario scenario(make_config(faulty));
    scenario.run();
    const RuleClassifier classifier;
    const auto batch = classify_series(scenario.platform(), scenario.db(),
                                       classifier, 0, 30 * kDay, kBucket,
                                       scenario.config().features);
    EXPECT_EQ(padded_series(scenario), batch) << "faulty=" << faulty;
  }
}

TEST(Streaming, TimeSeriesMatchesQuarterlySeries) {
  // A two-quarter horizon so the batch quarterly_series (fixed kQuarter
  // bucket) has two whole windows to compare.
  ScenarioConfig config;
  config.mini_platform = true;
  config.horizon = 2 * kQuarter;
  config.seed = 99;
  config.streaming.enabled = true;  // bucket defaults to kQuarter
  Scenario scenario(config);
  scenario.run();
  const RuleClassifier classifier;
  const ModalityTimeSeries batch =
      quarterly_series(scenario.platform(), scenario.db(), classifier, 0,
                       2 * kQuarter, scenario.config().features);
  const ModalityTimeSeries stream = scenario.streaming()->time_series();
  ASSERT_EQ(stream.primary_users.size(), batch.primary_users.size());
  EXPECT_EQ(stream.primary_users, batch.primary_users);
  EXPECT_EQ(stream.gateway_end_users, batch.gateway_end_users);
  EXPECT_EQ(stream.bucket, batch.bucket);
}

/// The series must not depend on the storage mode: plain vectors, tiny
/// segments, and spilled segments all produce identical classifications.
TEST(Streaming, SeriesInvariantAcrossSegmentCaps) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("tgsim_streaming_") + info->name());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Scenario reference(make_config(/*faulty=*/true));
  reference.run();
  const auto want = reference.streaming()->series();

  for (const std::uint32_t cap : {64u, 1024u}) {
    Scenario scenario(
        make_config(/*faulty=*/true, cap, (dir / std::to_string(cap)).string()));
    std::filesystem::create_directories(dir / std::to_string(cap));
    scenario.run();
    EXPECT_TRUE(scenario.db().segmented());
    if (cap == 64u) {
      EXPECT_GT(scenario.db().segment_stats().spilled, 0u) << "cap " << cap;
    }
    EXPECT_EQ(scenario.streaming()->series(), want) << "cap " << cap;
  }
  std::filesystem::remove_all(dir);
}

TEST(Streaming, DropsOutOfSeriesRecordsAndCountsThem) {
  const Platform platform = mini_platform();
  StreamingConfig config;
  config.series_end = 2 * kBucket;
  config.bucket = kBucket;
  StreamingExtractor ex(platform, config);
  JobRecord r;
  r.user = UserId{0};
  r.resource = ResourceId{0};
  r.nodes = 1;
  r.cores_per_node = 8;
  r.end_time = kBucket / 2;
  ex.on_job(r);
  r.end_time = 2 * kBucket;  // at series_end: outside every window
  ex.on_job(r);
  r.end_time = 3 * kBucket;
  ex.on_job(r);
  ex.finish();
  EXPECT_EQ(ex.stats().jobs_ingested.value(), 3u);
  EXPECT_EQ(ex.stats().records_dropped.value(), 2u);
  EXPECT_EQ(ex.stats().windows_closed.value(), 2u);
  ASSERT_EQ(ex.series().size(), 2u);
  EXPECT_NE(ex.series()[0][0], kInactiveUser);
  EXPECT_EQ(ex.series()[1][0], kInactiveUser);
}

TEST(Streaming, RegressingStreamViolatesContract) {
  const Platform platform = mini_platform();
  StreamingConfig config;
  config.series_end = 3 * kBucket;
  config.bucket = kBucket;
  StreamingExtractor ex(platform, config);
  JobRecord r;
  r.user = UserId{0};
  r.resource = ResourceId{0};
  r.nodes = 1;
  r.cores_per_node = 8;
  r.end_time = kBucket + kHour;  // closes window 0
  ex.on_job(r);
  r.end_time = kHour;  // regresses before the open window
  EXPECT_THROW(ex.on_job(r), InvariantError);
}

TEST(Streaming, FinishIsIdempotentAndGuardsAccessors) {
  const Platform platform = mini_platform();
  StreamingConfig config;
  config.series_end = kBucket;
  config.bucket = kBucket;
  StreamingExtractor ex(platform, config);
  EXPECT_THROW(ex.series(), PreconditionError);
  ex.finish();
  ex.finish();
  EXPECT_TRUE(ex.finished());
  EXPECT_EQ(ex.series().size(), 1u);  // one empty window
  EXPECT_EQ(ex.stats().windows_closed.value(), 1u);
}

}  // namespace
}  // namespace tg
