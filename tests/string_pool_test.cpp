#include "util/string_pool.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "accounting/swf.hpp"
#include "accounting/usage_db.hpp"

namespace tg {
namespace {

TEST(StringPool, InternReturnsDenseIdsInFirstSightOrder) {
  StringPool pool;
  EXPECT_TRUE(pool.empty());
  const EndUserId a = pool.intern("hub:alice");
  const EndUserId b = pool.intern("hub:bob");
  const EndUserId c = pool.intern("hub:carol");
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(b.value(), 1);
  EXPECT_EQ(c.value(), 2);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(StringPool, ReinterningIsIdempotent) {
  StringPool pool;
  const EndUserId first = pool.intern("hub:alice");
  (void)pool.intern("hub:bob");
  EXPECT_EQ(pool.intern("hub:alice"), first);
  EXPECT_EQ(pool.size(), 2u);
}

TEST(StringPool, EmptyStringMapsToInvalidId) {
  StringPool pool;
  const EndUserId none = pool.intern("");
  EXPECT_FALSE(none.valid());
  EXPECT_TRUE(pool.empty());
  EXPECT_EQ(pool.at(none), "");
}

TEST(StringPool, FindWithoutInterning) {
  StringPool pool;
  EXPECT_FALSE(pool.find("hub:alice").valid());
  const EndUserId a = pool.intern("hub:alice");
  EXPECT_EQ(pool.find("hub:alice"), a);
  EXPECT_FALSE(pool.find("hub:bob").valid());
}

TEST(StringPool, AtRoundTripsEveryInternedString) {
  StringPool pool;
  std::vector<EndUserId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(pool.intern("nanohub:user" + std::to_string(i)));
  }
  ASSERT_EQ(pool.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.at(ids[static_cast<std::size_t>(i)]),
              "nanohub:user" + std::to_string(i));
  }
}

TEST(StringPool, GrowthPreservesIdsAndLookups) {
  // Push well past the initial table size to force several rehashes.
  StringPool pool;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(pool.intern("u" + std::to_string(i)).value(), i);
  }
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(pool.find("u" + std::to_string(i)).value(), i);
  }
}

TEST(StringPool, DeterministicAcrossInstances) {
  StringPool a;
  StringPool b;
  const std::vector<std::string> labels{"x", "hub:a", "hub:b", "y", "z"};
  for (const auto& s : labels) (void)a.intern(s);
  for (const auto& s : labels) (void)b.intern(s);
  for (const auto& s : labels) EXPECT_EQ(a.find(s), b.find(s));
}

TEST(StringPool, IdsSurviveSwfExportImportRoundTrip) {
  // The end-user id rides SWF field 14 (executable): a database exported
  // to SWF and re-imported yields requests carrying the same interned ids.
  StringPool pool;
  UsageDatabase db;
  for (int i = 0; i < 6; ++i) {
    JobRecord r;
    r.resource = ResourceId{0};
    r.user = UserId{1};
    r.nodes = 1;
    r.cores_per_node = 8;
    r.submit_time = i * kHour;
    r.start_time = i * kHour;
    r.end_time = (i + 1) * kHour;
    r.requested_walltime = kHour;
    r.final_state = JobState::kCompleted;
    // Two jobs carry no attribute; the rest alternate between two users.
    if (i >= 2) {
      r.gateway = GatewayId{0};
      r.gateway_end_user =
          pool.intern(i % 2 == 0 ? "hub:alice" : "hub:bob");
    }
    db.add(r);
  }

  std::ostringstream out;
  export_swf(db, out);
  std::istringstream in(out.str());
  SwfParseStats stats;
  const auto jobs = import_swf(in, &stats);
  ASSERT_EQ(stats.parsed, 6u);
  EXPECT_EQ(stats.skipped, 0u);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobRequest req = to_request(jobs[i], 8);
    EXPECT_EQ(req.gateway_end_user, db.jobs()[i].gateway_end_user)
        << "job " << i;
  }
  // The ids resolve back to the original labels through the same pool.
  EXPECT_EQ(pool.at(db.jobs()[2].gateway_end_user), "hub:alice");
  EXPECT_EQ(pool.at(db.jobs()[3].gateway_end_user), "hub:bob");
  EXPECT_FALSE(db.jobs()[0].gateway_end_user.valid());
}

TEST(UsageDatabase, EndUserLabelResolvesThroughAttachedPool) {
  StringPool pool;
  UsageDatabase db;
  db.set_end_user_pool(&pool);
  JobRecord r;
  r.resource = ResourceId{0};
  r.user = UserId{1};
  r.nodes = 1;
  r.cores_per_node = 8;
  r.end_time = kHour;
  r.gateway = GatewayId{0};
  r.gateway_end_user = pool.intern("hub:alice");
  db.add(r);
  EXPECT_EQ(db.end_user_label(db.jobs()[0].gateway_end_user), "hub:alice");
  EXPECT_EQ(db.end_user_label(EndUserId{}), "");
  EXPECT_EQ(db.end_user_id_limit(), 1);
}

}  // namespace
}  // namespace tg
