#include "core/survey.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace tg {
namespace {

std::vector<Modality> population(int capacity, int gateway, int exploratory) {
  std::vector<Modality> truth;
  for (int i = 0; i < capacity; ++i) truth.push_back(Modality::kCapacityBatch);
  for (int i = 0; i < gateway; ++i) truth.push_back(Modality::kGateway);
  for (int i = 0; i < exploratory; ++i) {
    truth.push_back(Modality::kExploratory);
  }
  return truth;
}

TEST(Survey, FullCensusPerfectRecall) {
  SurveyConfig cfg;
  cfg.sample_fraction = 1.0;
  cfg.response_rate = 1.0;
  cfg.misreport_rate = 0.0;
  const SurveyEstimator survey(cfg);
  const auto truth = population(100, 40, 60);
  Rng rng(1);
  const SurveyEstimate est = survey.run(truth, {}, rng);
  EXPECT_EQ(est.invited, 200);
  EXPECT_EQ(est.responded, 200);
  EXPECT_DOUBLE_EQ(est.users[static_cast<std::size_t>(Modality::kCapacityBatch)],
                   100.0);
  EXPECT_DOUBLE_EQ(est.users[static_cast<std::size_t>(Modality::kGateway)],
                   40.0);
  EXPECT_DOUBLE_EQ(survey_mape(est, count_by_modality(truth)), 0.0);
}

TEST(Survey, EmptyPopulation) {
  const SurveyEstimator survey;
  Rng rng(2);
  const SurveyEstimate est = survey.run({}, {}, rng);
  EXPECT_EQ(est.invited, 0);
  EXPECT_EQ(est.responded, 0);
  EXPECT_DOUBLE_EQ(est.total_users(), 0.0);
}

TEST(Survey, SamplingScalesToPopulation) {
  SurveyConfig cfg;
  cfg.sample_fraction = 0.3;
  cfg.response_rate = 0.5;
  cfg.misreport_rate = 0.0;
  const SurveyEstimator survey(cfg);
  const auto truth = population(2000, 800, 1200);
  Rng rng(3);
  const SurveyEstimate est = survey.run(truth, {}, rng);
  // Unbiased estimator: totals should land near the true counts.
  EXPECT_NEAR(est.total_users(), 4000.0, 1.0);  // scaling is exact by design
  EXPECT_NEAR(est.users[static_cast<std::size_t>(Modality::kCapacityBatch)],
              2000.0, 200.0);
  EXPECT_NEAR(est.users[static_cast<std::size_t>(Modality::kGateway)], 800.0,
              150.0);
}

TEST(Survey, MisreportingBlursSmallClasses) {
  SurveyConfig clean;
  clean.sample_fraction = 1.0;
  clean.response_rate = 1.0;
  clean.misreport_rate = 0.0;
  SurveyConfig noisy = clean;
  noisy.misreport_rate = 0.3;
  const auto truth = population(1000, 30, 0);
  Rng r1(4);
  Rng r2(4);
  const auto est_clean = SurveyEstimator(clean).run(truth, {}, r1);
  const auto est_noisy = SurveyEstimator(noisy).run(truth, {}, r2);
  const auto counts = count_by_modality(truth);
  EXPECT_LT(survey_mape(est_clean, counts), survey_mape(est_noisy, counts));
  // Noise moves mass from the big class onto empty classes.
  double phantom = 0.0;
  for (std::size_t m = 0; m < kModalityCount; ++m) {
    if (counts[m] == 0) phantom += est_noisy.users[m];
  }
  EXPECT_GT(phantom, 0.0);
}

TEST(Survey, HeavyUserBiasOversamplesBigUsers) {
  // Capacity users carry 10x the weight of exploratory ones; with strong
  // bias the capacity share of respondents (and thus the estimate)
  // overshoots.
  SurveyConfig cfg;
  cfg.sample_fraction = 0.5;
  cfg.response_rate = 0.3;
  cfg.misreport_rate = 0.0;
  cfg.heavy_user_bias = 4.0;
  const SurveyEstimator survey(cfg);
  const auto truth = population(500, 0, 500);
  std::vector<double> weights;
  for (int i = 0; i < 500; ++i) weights.push_back(10.0);
  for (int i = 0; i < 500; ++i) weights.push_back(1.0);
  Rng rng(5);
  const SurveyEstimate est = survey.run(truth, weights, rng);
  const double cap =
      est.users[static_cast<std::size_t>(Modality::kCapacityBatch)];
  const double expl =
      est.users[static_cast<std::size_t>(Modality::kExploratory)];
  EXPECT_GT(cap, expl * 1.5) << "bias should skew toward heavy users";
}

TEST(Survey, ConfigValidation) {
  SurveyConfig cfg;
  cfg.sample_fraction = 0.0;
  EXPECT_THROW(SurveyEstimator{cfg}, PreconditionError);
  cfg = SurveyConfig{};
  cfg.response_rate = 1.5;
  EXPECT_THROW(SurveyEstimator{cfg}, PreconditionError);
  cfg = SurveyConfig{};
  cfg.misreport_rate = 1.0;
  EXPECT_THROW(SurveyEstimator{cfg}, PreconditionError);
}

TEST(Survey, WeightsMisalignedRejected) {
  const SurveyEstimator survey;
  Rng rng(6);
  EXPECT_THROW((void)survey.run(population(5, 0, 0), {1.0, 2.0}, rng),
               PreconditionError);
}

class SurveySampleSweep : public ::testing::TestWithParam<double> {};

TEST_P(SurveySampleSweep, ErrorShrinksWithSampleSize) {
  // Average MAPE over several waves should fall as sampling grows.
  const auto truth = population(600, 250, 150);
  const auto counts = count_by_modality(truth);
  const auto mean_mape = [&](double fraction) {
    SurveyConfig cfg;
    cfg.sample_fraction = fraction;
    cfg.response_rate = 0.5;
    const SurveyEstimator survey(cfg);
    double total = 0.0;
    for (int wave = 0; wave < 30; ++wave) {
      Rng rng(100 + static_cast<std::uint64_t>(wave));
      total += survey_mape(survey.run(truth, {}, rng), counts);
    }
    return total / 30.0;
  };
  const double small = mean_mape(GetParam());
  const double large = mean_mape(std::min(1.0, GetParam() * 4));
  EXPECT_LT(large, small * 1.05);  // allow slack for noise
}

INSTANTIATE_TEST_SUITE_P(Fractions, SurveySampleSweep,
                         ::testing::Values(0.05, 0.1, 0.25));

}  // namespace
}  // namespace tg
