#include "accounting/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/replay.hpp"

namespace tg {
namespace {

JobRecord record(UserId user, int nodes, SimTime submit, Duration wait,
                 Duration run, JobState state = JobState::kCompleted) {
  JobRecord r;
  r.job = JobId{1};
  r.resource = ResourceId{2};
  r.user = user;
  r.project = ProjectId{3};
  r.submit_time = submit;
  r.start_time = submit + wait;
  r.end_time = r.start_time + run;
  r.nodes = nodes;
  r.cores_per_node = 8;
  r.requested_walltime = 2 * run;
  r.final_state = state;
  return r;
}

TEST(Swf, LineHas18Fields) {
  const std::string line = to_swf_line(record(UserId{7}, 4, kHour, kMinute,
                                              2 * kHour),
                                       1);
  std::istringstream in(line);
  int fields = 0;
  std::string tok;
  while (in >> tok) ++fields;
  EXPECT_EQ(fields, 18);
}

TEST(Swf, FieldValues) {
  const std::string line = to_swf_line(record(UserId{7}, 4, kHour, kMinute,
                                              2 * kHour),
                                       42);
  std::istringstream in(line);
  long f[18];
  for (auto& v : f) in >> v;
  EXPECT_EQ(f[0], 42);          // job number
  EXPECT_EQ(f[1], 3600);        // submit (s)
  EXPECT_EQ(f[2], 60);          // wait (s)
  EXPECT_EQ(f[3], 7200);        // run (s)
  EXPECT_EQ(f[4], 32);          // allocated procs (4 nodes x 8)
  EXPECT_EQ(f[7], 32);          // requested procs
  EXPECT_EQ(f[8], 14400);       // requested time (s)
  EXPECT_EQ(f[10], 1);          // status completed
  EXPECT_EQ(f[11], 7);          // user
  EXPECT_EQ(f[12], 3);          // group (project)
  EXPECT_EQ(f[15], 2);          // partition (resource)
}

TEST(Swf, StatusMapping) {
  const auto status_of = [](JobState s) {
    const std::string line = to_swf_line(record(UserId{1}, 1, 0, 0, kHour, s),
                                         1);
    std::istringstream in(line);
    long f[18];
    for (auto& v : f) in >> v;
    return f[10];
  };
  EXPECT_EQ(status_of(JobState::kCompleted), 1);
  EXPECT_EQ(status_of(JobState::kFailed), 0);
  EXPECT_EQ(status_of(JobState::kKilled), 0);
  EXPECT_EQ(status_of(JobState::kCancelled), 5);
}

TEST(Swf, ExportImportRoundTrip) {
  UsageDatabase db;
  db.add(record(UserId{1}, 2, 0, kMinute, kHour));
  db.add(record(UserId{2}, 8, kHour, 0, 3 * kHour, JobState::kFailed));
  std::ostringstream out;
  export_swf(db, out, "test-machine");
  std::istringstream in(out.str());
  const auto jobs = import_swf(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].job_number, 1);
  EXPECT_EQ(jobs[0].allocated_procs, 16);
  EXPECT_EQ(jobs[0].user, 1);
  EXPECT_EQ(jobs[1].submit_seconds, 3600);
  EXPECT_EQ(jobs[1].status, 0);
  EXPECT_EQ(jobs[1].partition, 2);
}

TEST(Swf, ImportSkipsHeadersAndBlanks) {
  std::istringstream in(
      "; header comment\n"
      "\n"
      "   ; indented comment\n"
      "1 0 10 100 8 -1 -1 8 200 -1 1 5 2 -1 0 0 -1 -1\n");
  const auto jobs = import_swf(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].run_seconds, 100);
  EXPECT_EQ(jobs[0].requested_seconds, 200);
}

TEST(Swf, MalformedLinesSkippedWithCount) {
  // Archive traces contain damaged lines; the importer must drop them and
  // report counts instead of aborting the whole import.
  std::istringstream in(
      "1 2 3\n"                                        // truncated
      "1 0 10 100 8 -1 -1 8 200 -1 1 5 2 -1 0 0 -1 -1\n"  // good
      "1 0 10 100 8 -1 -1 8 zzz -1 1 5 2 -1 0 0 -1 -1\n"  // non-numeric
      "2 0 10 50 4 -1 -1 4 100 -1 1 6 2 -1 0 0 -1 -1\n"   // good
      "3 0 10 50 4 -1 -1 4 100 -1 1 6 2 -1 0 0 -1 -1 99\n");  // extra field
  SwfParseStats stats;
  const auto jobs = import_swf(in, &stats);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].job_number, 1);
  EXPECT_EQ(jobs[1].job_number, 2);
  EXPECT_EQ(stats.parsed, 2u);
  EXPECT_EQ(stats.skipped, 3u);
  EXPECT_EQ(stats.first_skipped_line, 1);
}

TEST(Swf, OverflowFieldSkipped) {
  // A value that overflows `long` sets failbit mid-line; the line must be
  // dropped whole, never half-parsed.
  std::istringstream in(
      "1 999999999999999999999999999 10 100 8 -1 -1 8 200 -1 1 5 2 -1 0 0 -1 "
      "-1\n"
      "2 0 10 50 4 -1 -1 4 100 -1 1 6 2 -1 0 0 -1 -1\n");
  SwfParseStats stats;
  const auto jobs = import_swf(in, &stats);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].job_number, 2);
  EXPECT_EQ(stats.skipped, 1u);
  EXPECT_EQ(stats.first_skipped_line, 1);
}

TEST(Swf, StatsOptionalAndCleanImportCountsParsed) {
  std::istringstream in1("1 2 3\n");
  EXPECT_TRUE(import_swf(in1).empty());  // null stats: still no throw
  std::istringstream in2(
      "; header\n"
      "1 0 10 100 8 -1 -1 8 200 -1 1 5 2 -1 0 0 -1 -1\n");
  SwfParseStats stats;
  EXPECT_EQ(import_swf(in2, &stats).size(), 1u);
  EXPECT_EQ(stats.parsed, 1u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.first_skipped_line, 0);
}

TEST(Swf, FaultDispositionRoundTrip) {
  // Outage-killed exports as SWF status 0 (failed), requeued attempts as
  // status 2 (partial execution); both survive a round trip.
  UsageDatabase db;
  db.add(record(UserId{1}, 2, 0, 0, kHour, JobState::kKilledByOutage));
  db.add(record(UserId{2}, 4, kHour, 0, kHour, JobState::kRequeued));
  std::ostringstream out;
  export_swf(db, out);
  std::istringstream in(out.str());
  SwfParseStats stats;
  const auto jobs = import_swf(in, &stats);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(jobs[0].status, 0);
  EXPECT_EQ(jobs[1].status, 2);
}

TEST(Swf, ToRequestConvertsProcsToNodes) {
  SwfJob job;
  job.requested_procs = 17;
  job.run_seconds = 100;
  job.requested_seconds = 300;
  job.status = 1;
  job.user = 4;
  job.group = 9;
  const JobRequest req = to_request(job, 8);
  EXPECT_EQ(req.nodes, 3);  // ceil(17/8)
  EXPECT_EQ(req.actual_runtime, 100 * kSecond);
  EXPECT_EQ(req.requested_walltime, 300 * kSecond);
  EXPECT_EQ(req.user, UserId{4});
  EXPECT_EQ(req.project, ProjectId{9});
  EXPECT_FALSE(req.fails);
}

TEST(Swf, ToRequestFailureReproduction) {
  SwfJob job;
  job.requested_procs = 8;
  job.run_seconds = 100;
  job.requested_seconds = 300;
  job.status = 0;  // failed before its wall
  const JobRequest req = to_request(job, 8);
  EXPECT_TRUE(req.fails);
  EXPECT_EQ(req.fail_after, 100 * kSecond);
}

TEST(Swf, ToRequestKillReproduction) {
  SwfJob job;
  job.requested_procs = 8;
  job.run_seconds = 300;
  job.requested_seconds = 300;
  job.status = 0;  // ran into the wall
  const JobRequest req = to_request(job, 8);
  EXPECT_FALSE(req.fails);
  EXPECT_GT(req.actual_runtime, req.requested_walltime);
}

TEST(Replay, TraceDrivesScheduler) {
  // Simulate, export, re-import, replay on an identical machine: the
  // replayed jobs complete with the same runtimes.
  ComputeResource res;
  res.id = ResourceId{0};
  res.site = SiteId{0};
  res.name = "m";
  res.nodes = 16;
  res.cores_per_node = 8;
  res.max_walltime = 48 * kHour;

  UsageDatabase db;
  db.add(record(UserId{1}, 2, 0, 0, kHour));
  db.add(record(UserId{2}, 4, 30 * kMinute, 0, 2 * kHour));
  std::ostringstream out;
  export_swf(db, out);
  std::istringstream in(out.str());
  const auto trace = import_swf(in);

  Engine engine;
  ResourceScheduler sched(engine, res);
  std::vector<Job> finished;
  sched.add_on_end([&](const Job& j) { finished.push_back(j); });
  const ReplayStats stats = replay_trace(engine, sched, trace);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.skipped, 0u);
  engine.run();
  ASSERT_EQ(finished.size(), 2u);
  EXPECT_EQ(finished[0].submit_time, 0);
  EXPECT_EQ(finished[0].runtime(), kHour);
  EXPECT_EQ(finished[1].submit_time, 30 * kMinute);
  EXPECT_EQ(finished[1].runtime(), 2 * kHour);
}

TEST(Replay, WideJobsClampedOrSkipped) {
  ComputeResource res;
  res.id = ResourceId{0};
  res.site = SiteId{0};
  res.name = "small";
  res.nodes = 2;
  res.cores_per_node = 8;
  res.max_walltime = kHour;

  SwfJob big;
  big.submit_seconds = 0;
  big.requested_procs = 1000;
  big.run_seconds = 60;
  big.requested_seconds = 60;
  big.status = 1;

  {
    Engine engine;
    ResourceScheduler sched(engine, res);
    ReplayOptions opt;
    opt.clamp_width = false;
    const auto stats = replay_trace(engine, sched, {big}, opt);
    EXPECT_EQ(stats.skipped, 1u);
  }
  {
    Engine engine;
    ResourceScheduler sched(engine, res);
    int done = 0;
    sched.add_on_end([&](const Job& j) {
      EXPECT_EQ(j.req.nodes, 2);
      ++done;
    });
    const auto stats = replay_trace(engine, sched, {big});
    EXPECT_EQ(stats.submitted, 1u);
    engine.run();
    EXPECT_EQ(done, 1);
  }
}

TEST(Replay, LimitRespected) {
  ComputeResource res;
  res.id = ResourceId{0};
  res.site = SiteId{0};
  res.name = "m";
  res.nodes = 16;
  res.cores_per_node = 8;

  std::vector<SwfJob> trace(10);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].submit_seconds = static_cast<long>(i);
    trace[i].requested_procs = 8;
    trace[i].run_seconds = 10;
    trace[i].requested_seconds = 20;
    trace[i].status = 1;
  }
  Engine engine;
  ResourceScheduler sched(engine, res);
  ReplayOptions opt;
  opt.limit = 3;
  const auto stats = replay_trace(engine, sched, trace, opt);
  EXPECT_EQ(stats.submitted, 3u);
}

}  // namespace
}  // namespace tg
