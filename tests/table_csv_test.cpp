#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace tg {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, ColumnsAlign) {
  Table t({"k", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::istringstream in(t.to_string());
  std::string line;
  std::size_t width = 0;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      width = line.size();
      first = false;
    }
    // Right-aligned numeric column keeps all lines equally wide.
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, RowArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), PreconditionError);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, RuleProducesSeparator) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // Header rule + explicit rule.
  std::size_t rules = 0;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) {
      ++rules;
    }
  }
  EXPECT_EQ(rules, 2u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
  EXPECT_EQ(Table::pct(0.1234), "12.3%");
  EXPECT_EQ(Table::pct(0.5, 0), "50%");
}

class CsvFixture : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "tg_csv_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvFixture, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"a", "b"});
    w.write_row({"1", "2"});
    w.write_row({"3", "4"});
  }
  EXPECT_EQ(slurp(), "a,b\n1,2\n3,4\n");
}

TEST_F(CsvFixture, EscapesSpecials) {
  {
    CsvWriter w(path_, {"f"});
    w.write_row({"has,comma"});
    w.write_row({"has\"quote"});
  }
  EXPECT_EQ(slurp(), "f\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvFixture, ArityEnforced) {
  CsvWriter w(path_, {"a", "b"});
  EXPECT_THROW(w.write_row({"1"}), PreconditionError);
}

TEST(CsvEscape, PassThroughPlain) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("new\nline"), "\"new\nline\"");
}

}  // namespace
}  // namespace tg
