#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "util/rng.hpp"

namespace tg {
namespace {

TEST(ThreadPool, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ParallelFor, MidBatchThrowDrainsAllTasks) {
  // A task throwing mid-batch must neither deadlock parallel_for nor lose
  // the completed results: every other task still runs to completion before
  // the first error is rethrown.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(pool, 64,
                   [&completed](std::size_t i) {
                     if (i == 13 || i == 40) {
                       throw std::runtime_error("task failed");
                     }
                     ++completed;
                   }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 62);
}

TEST(ParallelMap, MidBatchThrowDrainsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  const std::function<int(std::size_t)> fn = [&completed](std::size_t i) {
    if (i == 0) throw std::logic_error("first task fails");
    ++completed;
    return static_cast<int>(i);
  };
  // The *first* failure in index order is the one rethrown, even when later
  // tasks also fail.
  EXPECT_THROW(parallel_map<int>(pool, 32, fn), std::logic_error);
  EXPECT_EQ(completed.load(), 31);
}

TEST(ParallelFor, FirstErrorInIndexOrderIsRethrown) {
  ThreadPool pool(2);
  try {
    parallel_for(pool, 16, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("error-3");
      if (i == 11) throw std::runtime_error("error-11");
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "error-3");
  }
}

TEST(ThreadPool, DestructionDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // dtor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelMap, PreservesOrder) {
  ThreadPool pool(4);
  const auto out = parallel_map<int>(
      pool, 50, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMap, IndependentSimulationsReproducible) {
  // The intended use: replicated runs with per-index seeds must not
  // interfere. Sum of per-seed streams equals the serial computation.
  ThreadPool pool(4);
  auto work = [](std::size_t i) {
    std::uint64_t state = i;
    std::uint64_t acc = 0;
    for (int k = 0; k < 1000; ++k) acc ^= splitmix64(state);
    return acc;
  };
  const auto par = parallel_map<std::uint64_t>(pool, 16, work);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(par[i], work(i));
  }
}

}  // namespace
}  // namespace tg
