#include "core/trend.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tg {
namespace {

class TrendFixture : public ::testing::Test {
 protected:
  Platform platform = mini_platform();
  UsageDatabase db;
  RuleClassifier classifier;

  /// Adds a quarter's worth of capacity-style activity for `user` in
  /// quarter `q` (enough charge to not look exploratory).
  void add_capacity_quarter(UserId user, int q) {
    for (int j = 0; j < 5; ++j) {
      JobRecord r;
      r.resource = platform.compute()[0].id;
      r.user = user;
      r.project = ProjectId{0};
      r.nodes = 8;
      r.cores_per_node = 8;
      r.submit_time = q * kQuarter + j * kDay;
      r.start_time = r.submit_time;
      r.end_time = r.start_time + 10 * kHour;
      r.requested_walltime = 12 * kHour;
      r.charged_nu = 5000.0;
      r.charged_su = 5000.0;
      db.add(r);
    }
  }

  /// Adds exploratory-style activity (tiny) for `user` in quarter `q`.
  void add_exploratory_quarter(UserId user, int q) {
    JobRecord r;
    r.resource = platform.compute()[0].id;
    r.user = user;
    r.project = ProjectId{0};
    r.nodes = 1;
    r.cores_per_node = 8;
    r.submit_time = q * kQuarter + kDay;
    r.start_time = r.submit_time;
    r.end_time = r.start_time + 10 * kMinute;
    r.requested_walltime = kHour;
    r.charged_nu = 2.0;
    r.charged_su = 2.0;
    db.add(r);
  }
};

TEST_F(TrendFixture, StableUserIsRetained) {
  add_capacity_quarter(UserId{1}, 0);
  add_capacity_quarter(UserId{1}, 1);
  add_capacity_quarter(UserId{1}, 2);
  const auto churn =
      compute_churn(platform, db, classifier, 0, 3 * kQuarter);
  EXPECT_EQ(churn.quarter_pairs, 2);
  EXPECT_EQ(churn.transitions[static_cast<std::size_t>(
                Modality::kCapacityBatch)]
                             [static_cast<std::size_t>(
                                 Modality::kCapacityBatch)],
            2);
  EXPECT_DOUBLE_EQ(churn.retention(Modality::kCapacityBatch), 1.0);
  EXPECT_EQ(churn.total_transitions(), 2);
}

TEST_F(TrendFixture, GraduationShowsAsTransition) {
  // Exploratory in Q1, capacity from Q2 on — the classic on-ramp.
  add_exploratory_quarter(UserId{2}, 0);
  add_capacity_quarter(UserId{2}, 1);
  const auto churn =
      compute_churn(platform, db, classifier, 0, 2 * kQuarter);
  EXPECT_EQ(churn.transitions[static_cast<std::size_t>(
                Modality::kExploratory)]
                             [static_cast<std::size_t>(
                                 Modality::kCapacityBatch)],
            1);
  EXPECT_DOUBLE_EQ(churn.retention(Modality::kExploratory), 0.0);
}

TEST_F(TrendFixture, DepartureAndArrivalCounted) {
  add_capacity_quarter(UserId{3}, 0);   // leaves after Q1
  add_capacity_quarter(UserId{4}, 1);   // arrives in Q2
  const auto churn =
      compute_churn(platform, db, classifier, 0, 2 * kQuarter);
  EXPECT_EQ(churn.departed[static_cast<std::size_t>(
                Modality::kCapacityBatch)],
            1);
  EXPECT_EQ(churn.arrived[static_cast<std::size_t>(
                Modality::kCapacityBatch)],
            1);
}

TEST_F(TrendFixture, ChurnTableRenders) {
  add_capacity_quarter(UserId{1}, 0);
  add_capacity_quarter(UserId{1}, 1);
  const auto churn =
      compute_churn(platform, db, classifier, 0, 2 * kQuarter);
  const std::string table = churn.to_table().to_string();
  EXPECT_NE(table.find("capacity"), std::string::npos);
  EXPECT_NE(table.find("(new)"), std::string::npos);
}

TEST_F(TrendFixture, TrendGrowthComputed) {
  // 1 capacity user in Q1, 4 in Q4: growth = 4^(1/3)-1 ≈ 0.587.
  add_capacity_quarter(UserId{1}, 0);
  for (int q = 0; q < 4; ++q) add_capacity_quarter(UserId{1}, q);
  for (int u = 2; u <= 4; ++u) add_capacity_quarter(UserId{u}, 3);
  const auto trend =
      compute_trend(platform, db, classifier, 0, 4 * kQuarter);
  EXPECT_EQ(trend.quarters, 4);
  const auto cap = static_cast<std::size_t>(Modality::kCapacityBatch);
  EXPECT_EQ(trend.first_quarter_users[cap], 1);
  EXPECT_EQ(trend.last_quarter_users[cap], 4);
  EXPECT_NEAR(trend.quarterly_growth[cap], std::pow(4.0, 1.0 / 3.0) - 1.0,
              1e-9);
}

TEST_F(TrendFixture, EmptySeriesIsZero) {
  const auto churn = compute_churn(platform, db, classifier, 0, kQuarter);
  EXPECT_EQ(churn.quarter_pairs, 0);
  EXPECT_EQ(churn.total_transitions(), 0);
  const auto trend = compute_trend(platform, db, classifier, 0, kQuarter);
  EXPECT_EQ(trend.quarters, 1);
  for (double g : trend.quarterly_growth) EXPECT_DOUBLE_EQ(g, 0.0);
}

}  // namespace
}  // namespace tg
