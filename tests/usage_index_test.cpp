// Columnar index correctness for UsageDatabase (see DESIGN.md §5.2):
// window queries against a brute-force scan on both the end-sorted fast
// path and the unsorted fallback, invalidation on append-after-query,
// degenerate windows/users, and the Replicator determinism contract.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "accounting/usage_db.hpp"
#include "parallel/replicate.hpp"
#include "util/rng.hpp"

namespace tg {
namespace {

JobRecord job_rec(UserId::rep user, SimTime end, Duration runtime = kHour,
                  double nu = 1.0) {
  JobRecord r;
  r.job = JobId{end};
  r.user = UserId{user};
  r.project = ProjectId{0};
  r.submit_time = end - runtime;
  r.start_time = end - runtime;
  r.end_time = end;
  r.nodes = 1;
  r.cores_per_node = 8;
  r.requested_walltime = runtime;
  r.charged_nu = nu;
  return r;
}

TransferRecord transfer_rec(UserId::rep user, SimTime end) {
  TransferRecord r;
  r.user = UserId{user};
  r.project = ProjectId{0};
  r.bytes = 1e9;
  r.submit_time = end - kMinute;
  r.end_time = end;
  return r;
}

SessionRecord session_rec(UserId::rep user, SimTime end) {
  SessionRecord r;
  r.user = UserId{user};
  r.start_time = end - kMinute;
  r.end_time = end;
  return r;
}

/// Reference implementation: linear scan in append order.
std::vector<const JobRecord*> brute_jobs(const UsageDatabase& db, UserId user,
                                         SimTime from, SimTime to) {
  std::vector<const JobRecord*> out;
  for (const JobRecord& r : db.jobs()) {
    if (r.user == user && r.end_time >= from && r.end_time < to) {
      out.push_back(&r);
    }
  }
  return out;
}

/// A database whose streams arrive in end-time order (as the live Recorder
/// appends them) when `sorted`, or shuffled when not — exercising both the
/// binary-search fast path and the filtered fallback.
UsageDatabase make_db(bool sorted, int users = 7, int jobs_per_user = 40) {
  Rng rng(11);
  std::vector<JobRecord> jobs;
  std::vector<TransferRecord> transfers;
  std::vector<SessionRecord> sessions;
  for (int u = 0; u < users; ++u) {
    for (int j = 0; j < jobs_per_user; ++j) {
      const SimTime end = rng.uniform_int(1, 200) * kHour;
      jobs.push_back(job_rec(u, end));
      if (j % 3 == 0) transfers.push_back(transfer_rec(u, end + kMinute));
      if (j % 5 == 0) sessions.push_back(session_rec(u, end + 2 * kMinute));
    }
  }
  if (sorted) {
    std::stable_sort(jobs.begin(), jobs.end(),
                     [](const JobRecord& a, const JobRecord& b) {
                       return a.end_time < b.end_time;
                     });
    std::stable_sort(transfers.begin(), transfers.end(),
                     [](const TransferRecord& a, const TransferRecord& b) {
                       return a.end_time < b.end_time;
                     });
    std::stable_sort(sessions.begin(), sessions.end(),
                     [](const SessionRecord& a, const SessionRecord& b) {
                       return a.end_time < b.end_time;
                     });
  }
  UsageDatabase db;
  for (auto& r : jobs) db.add(std::move(r));
  for (auto& r : transfers) db.add(std::move(r));
  for (auto& r : sessions) db.add(std::move(r));
  return db;
}

TEST(UsageIndex, WindowQueriesMatchBruteForceSorted) {
  const UsageDatabase db = make_db(/*sorted=*/true);
  for (UserId::rep u = 0; u < db.user_id_limit(); ++u) {
    for (const auto& [from, to] : {std::pair<SimTime, SimTime>{0, 201 * kHour},
                                  {50 * kHour, 150 * kHour},
                                  {100 * kHour, 100 * kHour + 1}}) {
      const auto got = db.records_of(UserId{u}, from, to);
      EXPECT_EQ(got.jobs, brute_jobs(db, UserId{u}, from, to));
    }
  }
}

TEST(UsageIndex, WindowQueriesMatchBruteForceUnsorted) {
  const UsageDatabase db = make_db(/*sorted=*/false);
  for (UserId::rep u = 0; u < db.user_id_limit(); ++u) {
    const auto got = db.records_of(UserId{u}, 40 * kHour, 160 * kHour);
    EXPECT_EQ(got.jobs, brute_jobs(db, UserId{u}, 40 * kHour, 160 * kHour));
  }
}

TEST(UsageIndex, AppendAfterQueryInvalidatesIndexes) {
  UsageDatabase db;
  db.add(job_rec(0, kHour));
  EXPECT_EQ(db.jobs_of(UserId{0}).size(), 1u);  // builds the index
  db.add(job_rec(0, 2 * kHour));
  db.add(job_rec(1, 3 * kHour));  // widens the user id range too
  EXPECT_EQ(db.jobs_of(UserId{0}).size(), 2u);
  EXPECT_EQ(db.jobs_of(UserId{1}).size(), 1u);
  EXPECT_EQ(db.jobs_ending_in(0, 10 * kHour).size(), 3u);
  // Same for the other streams.
  db.ensure_indexes();
  db.add(transfer_rec(2, kHour));
  db.add(session_rec(2, kHour));
  const auto w = db.records_of(UserId{2}, 0, kDay);
  EXPECT_EQ(w.transfers.size(), 1u);
  EXPECT_EQ(w.sessions.size(), 1u);
}

TEST(UsageIndex, EmptyWindowsAndUnknownUsers) {
  const UsageDatabase db = make_db(/*sorted=*/true);
  EXPECT_TRUE(db.records_of(UserId{0}, 0, 0).empty());
  EXPECT_TRUE(db.records_of(UserId{0}, 500 * kHour, 600 * kHour).empty());
  EXPECT_TRUE(db.records_of(UserId{0}, 100 * kHour, 50 * kHour).empty());
  EXPECT_TRUE(db.records_of(UserId{9999}, 0, kDay).empty());
  EXPECT_TRUE(db.records_of(UserId{}, 0, kDay).empty());  // invalid id
  EXPECT_TRUE(db.jobs_ending_in(0, 0).empty());

  const UsageDatabase empty;
  EXPECT_EQ(empty.user_id_limit(), 0);
  EXPECT_TRUE(empty.jobs_of(UserId{0}).empty());
  EXPECT_TRUE(empty.jobs_ending_in(0, kDay).empty());
  EXPECT_TRUE(empty.records_of(UserId{0}, 0, kDay).empty());
}

TEST(UsageIndex, SingleUserDatabase) {
  UsageDatabase db;
  for (int j = 0; j < 10; ++j) db.add(job_rec(0, (j + 1) * kHour));
  EXPECT_EQ(db.user_id_limit(), 1);
  EXPECT_EQ(db.jobs_of(UserId{0}).size(), 10u);
  EXPECT_EQ(db.records_of(UserId{0}, 3 * kHour, 7 * kHour).jobs.size(), 4u);
  EXPECT_EQ(db.job_rows_of(UserId{0}).size(), 10u);
}

TEST(UsageIndex, JobsInMatchesArrivalOrder) {
  const UsageDatabase db = make_db(/*sorted=*/false);
  const auto got = db.jobs_ending_in(60 * kHour, 120 * kHour);
  std::vector<const JobRecord*> expected;
  for (const JobRecord& r : db.jobs()) {
    if (r.end_time >= 60 * kHour && r.end_time < 120 * kHour) {
      expected.push_back(&r);
    }
  }
  EXPECT_EQ(got, expected);
}

TEST(UsageIndex, ContiguousWindowOnSortedStream) {
  const UsageDatabase db = make_db(/*sorted=*/true);
  db.ensure_indexes();
  const auto range = db.job_window(60 * kHour, 120 * kHour);
  ASSERT_TRUE(range.contiguous);
  for (std::uint32_t row = range.first; row < range.last; ++row) {
    const SimTime end = db.jobs()[row].end_time;
    EXPECT_GE(end, 60 * kHour);
    EXPECT_LT(end, 120 * kHour);
  }
  EXPECT_EQ(range.last - range.first,
            db.jobs_ending_in(60 * kHour, 120 * kHour).size());
}

TEST(UsageIndex, MoveLeavesBothDatabasesQueryable) {
  // Regression: moving a database used to leave the moved-from object with
  // built indexes pointing into the moved-away record vectors, so the next
  // query walked freed memory. Both ends of a move must answer queries
  // correctly afterwards.
  UsageDatabase a = make_db(/*sorted=*/true);
  const std::size_t jobs = a.job_count();
  ASSERT_GT(a.jobs_of(UserId{0}).size(), 0u);  // build the indexes first

  UsageDatabase b(std::move(a));
  EXPECT_EQ(b.job_count(), jobs);
  EXPECT_EQ(b.jobs_of(UserId{0}), brute_jobs(b, UserId{0}, 0, kMaxSimTime));
  EXPECT_FALSE(b.jobs_ending_in(0, 201 * kHour).empty());
  // The moved-from database is empty and must query as empty — not crash.
  EXPECT_EQ(a.job_count(), 0u);
  EXPECT_EQ(a.user_id_limit(), 0);
  EXPECT_TRUE(a.jobs_of(UserId{0}).empty());
  EXPECT_TRUE(a.jobs_ending_in(0, 201 * kHour).empty());
  EXPECT_TRUE(a.records_of(UserId{0}, 0, 201 * kHour).empty());
  // ... and is reusable: appends and queries start from scratch.
  a.add(job_rec(3, 5 * kHour));
  EXPECT_EQ(a.jobs_of(UserId{3}).size(), 1u);

  // Move assignment over a database with its own built indexes: the
  // target must serve the new contents, not stale postings.
  UsageDatabase c = make_db(/*sorted=*/false, /*users=*/3,
                            /*jobs_per_user=*/5);
  ASSERT_GT(c.jobs_of(UserId{2}).size(), 0u);
  c = std::move(b);
  EXPECT_EQ(c.job_count(), jobs);
  EXPECT_EQ(c.jobs_of(UserId{0}), brute_jobs(c, UserId{0}, 0, kMaxSimTime));
  EXPECT_EQ(c.jobs_of(UserId{6}), brute_jobs(c, UserId{6}, 0, kMaxSimTime));
  EXPECT_TRUE(b.jobs_of(UserId{0}).empty());
  b.add(job_rec(1, kHour));
  EXPECT_EQ(b.jobs_of(UserId{1}).size(), 1u);
}

TEST(UsageIndex, TotalNuTracksAppends) {
  UsageDatabase db;
  db.add(job_rec(0, kHour, kHour, 2.5));
  db.add(job_rec(1, 2 * kHour, kHour, 1.5));
  EXPECT_DOUBLE_EQ(db.total_nu(), 4.0);
}

TEST(Replicator, ParallelMatchesSequential) {
  // The determinism contract: run(n, fn) equals the plain sequential loop
  // at any worker count, independent of completion order.
  const auto fn = [](std::size_t i) {
    Rng rng(1000 + i);
    double sum = 0.0;
    for (int k = 0; k < 1000; ++k) sum += rng.uniform();
    return std::make_pair(i, sum);
  };
  Replicator inline_pool(1);
  EXPECT_EQ(inline_pool.jobs(), 1u);
  const auto sequential = inline_pool.run(64, fn);
  for (const std::size_t jobs : {std::size_t{2}, std::size_t{4}}) {
    Replicator pool(jobs);
    EXPECT_EQ(pool.run(64, fn), sequential);  // exact, bit-for-bit
  }
}

TEST(Replicator, ZeroTasks) {
  Replicator pool(2);
  const auto out = pool.run(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace tg
