#include "workflow/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "accounting/usage_db.hpp"
#include "util/error.hpp"

namespace tg {
namespace {

struct WfFixture : ::testing::Test {
  Platform platform = mini_platform();
  Engine engine;
  SchedulerPool pool{engine, platform};
  FlowManager flows{engine, platform};
  UsageDatabase db;
  Recorder recorder{platform, db};

  WfFixture() {
    recorder.attach(pool);
    recorder.attach(flows);
  }

  DagTask task(Duration runtime = kHour, int nodes = 1) {
    DagTask t;
    t.nodes = nodes;
    t.actual_runtime = runtime;
    t.requested_walltime = runtime;
    return t;
  }
};

TEST_F(WfFixture, EnsembleRunsAllTasks) {
  WorkflowEngine wf(engine, pool, &flows);
  WorkflowResult result;
  bool done = false;
  wf.submit(make_ensemble(6, task()), UserId{1}, ProjectId{1},
            [&](const WorkflowResult& r) {
              result = r;
              done = true;
            });
  engine.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.tasks, 6);
  EXPECT_EQ(result.abandoned, 0);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(db.jobs().size(), 6u);
  EXPECT_EQ(wf.active(), 0u);
  EXPECT_EQ(wf.completed().size(), 1u);
  for (const auto& r : db.jobs()) EXPECT_TRUE(r.workflow.valid());
}

TEST_F(WfFixture, ChainRespectsOrder) {
  WorkflowEngine wf(engine, pool, &flows);
  wf.submit(make_chain(4, task(kHour)), UserId{1}, ProjectId{1});
  engine.run();
  ASSERT_EQ(db.jobs().size(), 4u);
  // Sequential chain of 1h tasks: ends at 1h, 2h, 3h, 4h.
  std::vector<SimTime> ends;
  for (const auto& r : db.jobs()) ends.push_back(r.end_time);
  std::sort(ends.begin(), ends.end());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ends[i], static_cast<SimTime>(i + 1) * kHour);
  }
}

TEST_F(WfFixture, FanOutFanInMakespan) {
  WorkflowEngine wf(engine, pool, &flows);
  WorkflowResult result;
  // setup 1h -> 4 members 2h in parallel -> merge 1h. ClusterA has 16
  // nodes so all members run concurrently: makespan 4h.
  wf.submit(make_fan_out_fan_in(4, task(kHour), task(2 * kHour), task(kHour)),
            UserId{1}, ProjectId{1},
            [&](const WorkflowResult& r) { result = r; });
  engine.run();
  EXPECT_EQ(result.makespan(), 4 * kHour);
  EXPECT_EQ(db.jobs().size(), 6u);
}

TEST_F(WfFixture, PinnedPlacementHonoured) {
  WorkflowEngine wf(engine, pool, &flows);
  DagTask t = task();
  t.resource = platform.compute()[1].id;  // ClusterB
  wf.submit(make_ensemble(3, t), UserId{1}, ProjectId{1});
  engine.run();
  ASSERT_EQ(db.jobs().size(), 3u);
  for (const auto& r : db.jobs()) {
    EXPECT_EQ(r.resource, platform.compute()[1].id);
  }
}

TEST_F(WfFixture, CrossSiteDataDependencyMovesBytes) {
  WorkflowEngine wf(engine, pool, &flows);
  Dag dag;
  DagTask producer = task(kHour);
  producer.resource = platform.compute()[0].id;  // SiteA
  producer.output_bytes = 5e9;
  DagTask consumer = task(kHour);
  consumer.resource = platform.compute()[1].id;  // SiteB
  const int p = dag.add_task(producer);
  const int c = dag.add_task(consumer);
  dag.add_edge(p, c);
  WorkflowResult result;
  wf.submit(std::move(dag), UserId{1}, ProjectId{1},
            [&](const WorkflowResult& r) { result = r; });
  engine.run();
  EXPECT_EQ(db.transfers().size(), 1u);
  EXPECT_DOUBLE_EQ(result.bytes_moved, 5e9);
  // Consumer started only after the 5 GB transfer (10 Gb/s link -> 4 s).
  ASSERT_EQ(db.jobs().size(), 2u);
  SimTime consumer_start = 0;
  for (const auto& r : db.jobs()) {
    if (r.resource == platform.compute()[1].id) consumer_start = r.start_time;
  }
  EXPECT_GE(consumer_start, kHour + 4 * kSecond);
}

TEST_F(WfFixture, SameSiteDependencySkipsTransfer) {
  WorkflowEngine wf(engine, pool, &flows);
  Dag dag;
  DagTask producer = task(kHour);
  producer.resource = platform.compute()[0].id;
  producer.output_bytes = 5e9;
  DagTask consumer = task(kHour);
  consumer.resource = platform.compute()[0].id;
  const int p = dag.add_task(producer);
  const int c = dag.add_task(consumer);
  dag.add_edge(p, c);
  wf.submit(std::move(dag), UserId{1}, ProjectId{1});
  engine.run();
  EXPECT_TRUE(db.transfers().empty());
}

TEST_F(WfFixture, FailedTaskRetriedOnce) {
  WorkflowEngine wf(engine, pool, &flows, /*retry_limit=*/1);
  DagTask t = task(kHour);
  t.fails = true;
  t.fail_after = 10 * kMinute;
  WorkflowResult result;
  wf.submit(make_ensemble(1, t), UserId{1}, ProjectId{1},
            [&](const WorkflowResult& r) { result = r; });
  engine.run();
  EXPECT_EQ(result.failures, 1);
  EXPECT_EQ(result.abandoned, 0);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(db.jobs().size(), 2u);  // failure + successful retry
}

TEST_F(WfFixture, ZeroRetriesAbandons) {
  WorkflowEngine wf(engine, pool, &flows, /*retry_limit=*/0);
  DagTask t = task(kHour);
  t.fails = true;
  t.fail_after = 10 * kMinute;
  Dag dag;
  const int a = dag.add_task(t);
  const int b = dag.add_task(task());
  dag.add_edge(a, b);
  WorkflowResult result;
  wf.submit(std::move(dag), UserId{1}, ProjectId{1},
            [&](const WorkflowResult& r) { result = r; });
  engine.run();
  EXPECT_EQ(result.abandoned, 1);
  EXPECT_FALSE(result.success());
  // The dependent still ran (workflow terminates rather than hanging).
  EXPECT_EQ(db.jobs().size(), 2u);
}

TEST_F(WfFixture, EmptyDagRejected) {
  WorkflowEngine wf(engine, pool, &flows);
  EXPECT_THROW(wf.submit(Dag{}, UserId{1}, ProjectId{1}), PreconditionError);
}

TEST_F(WfFixture, NullFlowManagerSkipsTransfers) {
  WorkflowEngine wf(engine, pool, nullptr);
  Dag dag;
  DagTask producer = task(kHour);
  producer.resource = platform.compute()[0].id;
  producer.output_bytes = 1e12;
  DagTask consumer = task(kHour);
  consumer.resource = platform.compute()[1].id;
  dag.add_edge(dag.add_task(producer), dag.add_task(consumer));
  WorkflowResult result;
  wf.submit(std::move(dag), UserId{1}, ProjectId{1},
            [&](const WorkflowResult& r) { result = r; });
  engine.run();
  EXPECT_EQ(result.makespan(), 2 * kHour);  // no transfer delay
  EXPECT_DOUBLE_EQ(result.bytes_moved, 0.0);
}

TEST_F(WfFixture, ConcurrentWorkflowsIsolated) {
  WorkflowEngine wf(engine, pool, &flows);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    wf.submit(make_ensemble(3, task(30 * kMinute)), UserId{i}, ProjectId{1},
              [&](const WorkflowResult&) { ++done; });
  }
  engine.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(db.jobs().size(), 15u);
  // Each workflow id distinct.
  std::set<WorkflowId> ids;
  for (const auto& r : db.jobs()) ids.insert(r.workflow);
  EXPECT_EQ(ids.size(), 5u);
}

}  // namespace
}  // namespace tg
